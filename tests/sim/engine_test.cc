/** @file Tests for the parallel experiment engine. */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/log.hh"
#include "sim/engine.hh"
#include "sim/plan.hh"
#include "sim/result_io.hh"
#include "sim/runner.hh"
#include "workload/suite.hh"

namespace sac {
namespace {

/** Small but real configuration so plans finish in milliseconds. */
GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::scaled(8);
    cfg.warpsPerCluster = 4;
    cfg.sac.profileWindow = 512;
    cfg.sac.profileMinRequests = 400;
    return cfg;
}

WorkloadProfile
tinyProfile(const std::string &name)
{
    WorkloadProfile p = findBenchmark(name);
    p.numKernels = 1;
    p.phases[0].accessesPerWarp = 32;
    return p;
}

/** A mixed plan: two workloads, three organizations, two seeds. */
ExperimentPlan
mixedPlan()
{
    const auto cfg = tinyConfig();
    ExperimentPlan plan;
    for (const char *name : {"RN", "GEMM"}) {
        const auto p = tinyProfile(name);
        plan.addOrgSweep(p, cfg,
                         {OrgKind::MemorySide, OrgKind::SmSide,
                          OrgKind::Sac});
        plan.add(p, cfg, OrgKind::MemorySide, 7);
    }
    return plan;
}

TEST(ExperimentPlan, DefaultsLabelsAndKeepsOrder)
{
    const auto cfg = tinyConfig();
    ExperimentPlan plan;
    plan.add(tinyProfile("RN"), cfg, OrgKind::Sac);
    plan.add(tinyProfile("RN"), cfg, OrgKind::SmSide, 3, "custom");
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].label, "RN/SAC");
    EXPECT_EQ(plan[1].label, "custom");
    EXPECT_EQ(plan[1].seed, 3u);
}

TEST(ExperimentPlan, OrgSweepUsesPresentationOrder)
{
    const auto &orgs = ExperimentPlan::allOrganizations();
    ASSERT_EQ(orgs.size(), 5u);
    EXPECT_EQ(orgs.front(), OrgKind::MemorySide);
    EXPECT_EQ(orgs.back(), OrgKind::Sac);

    ExperimentPlan plan;
    plan.addOrgSweep(tinyProfile("RN"), tinyConfig());
    ASSERT_EQ(plan.size(), 5u);
    for (std::size_t i = 0; i < orgs.size(); ++i)
        EXPECT_EQ(plan[i].org, orgs[i]);
}

TEST(ExperimentEngine, ResultsAreOrderedAndLabelled)
{
    const auto plan = mixedPlan();
    const auto records = ExperimentEngine(2).run(plan);
    ASSERT_EQ(records.size(), plan.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].jobIndex, i);
        EXPECT_EQ(records[i].label, plan[i].label);
        EXPECT_EQ(records[i].result.organization,
                  toString(plan[i].org));
        EXPECT_GT(records[i].result.cycles, 0u);
        EXPECT_GE(records[i].wallMs, 0.0);
    }
}

TEST(ExperimentEngine, ThreadCountDoesNotChangeResults)
{
    const auto plan = mixedPlan();

    // Byte-identical measurements for 1, 2 and 8 workers: serialize
    // every RunResult (all counters, all decisions) and compare the
    // strings. Lossless serialization makes this an exact check.
    const auto serial = ExperimentEngine(1).run(plan);
    ASSERT_EQ(serial.size(), plan.size());
    std::vector<std::string> expected;
    expected.reserve(serial.size());
    for (const auto &rec : serial)
        expected.push_back(result_io::toJson(rec.result));

    for (const unsigned threads : {2u, 8u}) {
        const auto parallel = ExperimentEngine(threads).run(plan);
        ASSERT_EQ(parallel.size(), plan.size()) << threads;
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            EXPECT_EQ(result_io::toJson(parallel[i].result),
                      expected[i])
                << "job " << i << " with " << threads << " threads";
        }
    }
}

TEST(ExperimentEngine, ProgressFiresOncePerJobAndIsSerialized)
{
    const auto plan = mixedPlan();
    ExperimentEngine engine(4);

    std::atomic<int> inside{0};
    std::set<std::size_t> seen;
    std::size_t calls = 0;
    bool overlapped = false;
    engine.onProgress([&](const EngineProgress &p) {
        if (inside.fetch_add(1) != 0)
            overlapped = true;
        ++calls;
        seen.insert(p.record.jobIndex);
        EXPECT_EQ(p.total, plan.size());
        EXPECT_GE(p.completed, 1u);
        EXPECT_LE(p.completed, plan.size());
        inside.fetch_sub(1);
    });

    engine.run(plan);
    EXPECT_EQ(calls, plan.size());
    EXPECT_EQ(seen.size(), plan.size());
    EXPECT_FALSE(overlapped);
}

TEST(ExperimentEngine, BadJobConfigurationIsIsolated)
{
    GpuConfig bad = tinyConfig();
    bad.sectorsPerLine = 3; // validate() rejects this

    // The engine isolates the failing job: the sweep completes, the
    // good job's measurements are intact and the bad one carries the
    // validation error as its diagnostic.
    ExperimentPlan plan;
    plan.add(tinyProfile("RN"), tinyConfig(), OrgKind::MemorySide);
    plan.add(tinyProfile("RN"), bad, OrgKind::MemorySide);
    const auto records = ExperimentEngine(2).run(plan);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].result.status, RunStatus::Ok);
    EXPECT_GT(records[0].result.cycles, 0u);
    EXPECT_EQ(records[1].result.status, RunStatus::Failed);
    EXPECT_NE(records[1].result.diagnostic.find("sectorsPerLine"),
              std::string::npos);

    // The raw single-job entry point still propagates, so callers
    // that want the exception keep it.
    EXPECT_THROW(ExperimentEngine::runJob(plan[1], 1), FatalError);
}

TEST(Runner, RunOrganizationsIsOrdered)
{
    const auto results =
        Runner(2u)
            .runOrganizations(tinyProfile("RN"), tinyConfig(), 1);
    const auto &orgs = ExperimentPlan::allOrganizations();
    ASSERT_EQ(results.size(), orgs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].organization, toString(orgs[i]));
        EXPECT_GT(results[i].cycles, 0u);
    }
}

TEST(Telemetry, TimelineAbsentByDefault)
{
    const auto rec = ExperimentEngine::runJob(
        {tinyProfile("RN"), tinyConfig(), OrgKind::Sac, 1, "RN/sac"});
    EXPECT_FALSE(rec.result.timeline.has_value());
}

TEST(ExperimentPlan, EnableTelemetryCoversExistingAndFutureJobs)
{
    const auto cfg = tinyConfig();
    ExperimentPlan plan;
    plan.add(tinyProfile("RN"), cfg, OrgKind::MemorySide);
    plan.enableTelemetry({.epoch = 128, .events = true});
    plan.add(tinyProfile("RN"), cfg, OrgKind::SmSide);
    ASSERT_EQ(plan.size(), 2u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].telemetry.epoch, 128u) << i;
        EXPECT_TRUE(plan[i].telemetry.events) << i;
    }
}

TEST(Telemetry, TimelinesAreIdenticalAcrossWorkerCounts)
{
    auto plan = mixedPlan();
    plan.enableTelemetry({.epoch = 256, .events = true});

    // Timelines contain only simulated-time data, so the serialized
    // results — timeline included — must stay byte-identical no
    // matter how many workers ran the plan.
    const auto serial = ExperimentEngine(1).run(plan);
    ASSERT_EQ(serial.size(), plan.size());
    std::vector<std::string> expected;
    expected.reserve(serial.size());
    for (const auto &rec : serial) {
        ASSERT_TRUE(rec.result.timeline.has_value()) << rec.label;
        EXPECT_FALSE(rec.result.timeline->samples.empty()) << rec.label;
        EXPECT_FALSE(rec.result.timeline->events.empty()) << rec.label;
        expected.push_back(result_io::toJson(rec.result));
    }

    for (const unsigned threads : {2u, 8u}) {
        const auto parallel = ExperimentEngine(threads).run(plan);
        ASSERT_EQ(parallel.size(), plan.size()) << threads;
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            EXPECT_EQ(result_io::toJson(parallel[i].result),
                      expected[i])
                << "job " << i << " with " << threads << " threads";
        }
    }
}

TEST(ExperimentEngine, JobTelemetryIsPopulated)
{
    const auto plan = mixedPlan();
    EngineTelemetry t;
    const auto records = ExperimentEngine(2).run(plan, &t);

    EXPECT_EQ(t.workers, 2u);
    EXPECT_GT(t.wallMs, 0.0);
    EXPECT_GT(t.busyMs, 0.0);
    ASSERT_EQ(t.workerBusyMs.size(), 2u);
    EXPECT_NEAR(t.workerBusyMs[0] + t.workerBusyMs[1], t.busyMs, 1e-9);
    EXPECT_GT(t.utilization(), 0.0);
    EXPECT_LE(t.utilization(), 1.0 + 1e-9);

    for (const auto &rec : records) {
        EXPECT_GE(rec.queueMs, 0.0);
        EXPECT_LT(rec.worker, 2u);
        EXPECT_GE(rec.wallMs, 0.0);
    }
}

} // namespace
} // namespace sac
