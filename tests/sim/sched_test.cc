/**
 * @file
 * Unit tests for the sim::Component scheduling core: WakeQueue heap
 * semantics (decrease-key, duplicate-due ordinal ordering, lazy
 * re-key) and the Scheduler behaviours the byte-identity argument
 * rests on (in-cycle ordinal order, same-cycle wake clamping, idle
 * refill replay, clock-jump exclusion, wakeAll).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/sched.hh"

namespace sac {
namespace sim {
namespace {

/** Scriptable component recording every tick and replay it receives. */
class FakeComponent final : public Component
{
  public:
    explicit FakeComponent(const char *name) : name_(name) {}

    const char *name() const override { return name_; }

    void
    tick(Cycle now) override
    {
        ticks.push_back(now);
        if (log)
            log->push_back(std::string(name_) + "@" +
                           std::to_string(now));
    }

    Cycle
    nextEventCycle(Cycle now) const override
    {
        return nextEvent >= now ? nextEvent : now;
    }

    void skipIdleCycles(Cycle cycles) override { skipped += cycles; }

    /** What nextEventCycle reports after the next tick. */
    Cycle nextEvent = cycleNever;
    std::vector<Cycle> ticks;
    Cycle skipped = 0;
    std::vector<std::string> *log = nullptr;

  private:
    const char *name_;
};

TEST(WakeQueueTest, WakeIsDecreaseKeyOnly)
{
    WakeQueue q;
    FakeComponent a("a");
    const ComponentId id = q.add(a, 100);
    EXPECT_EQ(q.keyOf(id), 100u);

    q.wake(id, 40); // earlier: takes effect
    EXPECT_EQ(q.keyOf(id), 40u);
    EXPECT_EQ(q.nextDue(), 40u);

    q.wake(id, 70); // later: ignored, deferral is the owner's re-key
    EXPECT_EQ(q.keyOf(id), 40u);

    q.rekey(id, 70); // exact set moves in either direction
    EXPECT_EQ(q.keyOf(id), 70u);
    q.rekey(id, 10);
    EXPECT_EQ(q.keyOf(id), 10u);
    EXPECT_EQ(q.nextDue(), 10u);
}

TEST(WakeQueueTest, DuplicateDueOrdersByRegistrationOrdinal)
{
    WakeQueue q;
    FakeComponent a("a"), b("b"), c("c");
    const ComponentId ia = q.add(a, 5);
    const ComponentId ib = q.add(b, 5);
    const ComponentId ic = q.add(c, 5);

    // All due at 5: the minimum must be the earliest ordinal, and
    // re-keying it must surface the next ordinal, not an arbitrary one.
    EXPECT_EQ(q.peekDue(5), ia);
    q.rekey(ia, 9);
    EXPECT_EQ(q.peekDue(5), ib);
    q.rekey(ib, 9);
    EXPECT_EQ(q.peekDue(5), ic);
    q.rekey(ic, 9);
    EXPECT_EQ(q.peekDue(5), invalidComponent);
    EXPECT_EQ(q.nextDue(), 9u);

    // Ordinal order holds even when the later ordinal was keyed first.
    q.rekey(ic, 2);
    q.rekey(ia, 2);
    EXPECT_EQ(q.peekDue(2), ia);
}

TEST(WakeQueueTest, PeekDoesNotPassFutureKeys)
{
    WakeQueue q;
    FakeComponent a("a");
    q.add(a, 8);
    EXPECT_EQ(q.peekDue(7), invalidComponent);
    EXPECT_NE(q.peekDue(8), invalidComponent);
}

TEST(SchedulerTest, RunCycleTicksDueComponentsInOrdinalOrder)
{
    Scheduler s;
    std::vector<std::string> log;
    FakeComponent a("a"), b("b"), c("c");
    a.log = b.log = c.log = &log;
    s.add(a);
    s.add(b);
    s.add(c);

    // All registered due at 0; b defers itself far out after its tick.
    a.nextEvent = 1;
    b.nextEvent = 100;
    c.nextEvent = 1;
    s.runCycle(0);
    EXPECT_EQ(log, (std::vector<std::string>{"a@0", "b@0", "c@0"}));

    log.clear();
    s.runCycle(1);
    EXPECT_EQ(log, (std::vector<std::string>{"a@1", "c@1"}));
    EXPECT_EQ(s.nextDue(), 2u); // a and c re-keyed to max(1+1, 1)
}

TEST(SchedulerTest, LazyRekeyFollowsNextEventCycle)
{
    Scheduler s;
    FakeComponent a("a");
    s.add(a);
    a.nextEvent = 50;
    s.runCycle(0);
    EXPECT_EQ(s.nextDue(), 50u);

    // A producer wake may pull the key earlier again...
    s.wake(0, 20);
    EXPECT_EQ(s.nextDue(), 20u);
    // ...and the tick at 20 lazily re-keys from the component.
    a.nextEvent = 90;
    s.runCycle(20);
    EXPECT_EQ(s.nextDue(), 90u);
}

TEST(SchedulerTest, SameCycleWakeFromLaterOrdinalClampsToNextCycle)
{
    Scheduler s;
    std::vector<std::string> log;
    FakeComponent a("a"), b("b");
    a.log = b.log = &log;
    const ComponentId ia = s.add(a);
    s.add(b);

    // While b (ordinal 1) ticks, it wakes a (ordinal 0) "now". The
    // reference loop would only show a that push next cycle, so the
    // wake must land at now + 1 — a must not tick twice at cycle 3.
    class Waker final : public Component
    {
      public:
        Waker(Scheduler &s, ComponentId target) : s_(s), target_(target) {}
        const char *name() const override { return "waker"; }
        void tick(Cycle now) override { s_.wake(target_, now); }
        Cycle nextEventCycle(Cycle) const override { return cycleNever; }

      private:
        Scheduler &s_;
        ComponentId target_;
    };
    Waker w(s, ia);
    s.add(w);

    a.nextEvent = cycleNever;
    b.nextEvent = cycleNever;
    s.runCycle(3);
    EXPECT_EQ(log, (std::vector<std::string>{"a@3", "b@3"}));
    // The waker's same-cycle wake of a landed at 4, not 3.
    EXPECT_EQ(s.nextDue(), 4u);

    log.clear();
    s.runCycle(4);
    EXPECT_EQ(log, (std::vector<std::string>{"a@4"}));
}

TEST(SchedulerTest, IdleGapsReplayPerComponent)
{
    Scheduler s;
    FakeComponent a("a");
    s.add(a);

    a.nextEvent = 10;
    s.runCycle(0); // ticked at 0, next due 10
    s.runCycle(10);
    // Cycles 1..9 passed without a tick: the replay must hand the
    // component exactly that gap before its cycle-10 tick.
    EXPECT_EQ(a.skipped, 9u);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0, 10}));
}

TEST(SchedulerTest, ClockJumpIsExcludedFromReplay)
{
    Scheduler s;
    FakeComponent a("a");
    s.add(a);

    a.nextEvent = 20;
    s.runCycle(0);
    // The reference loop also jumps these cycles without refills
    // (kernel-boundary stall): they must not count as idle gap.
    s.onClockJump(15);
    s.runCycle(20);
    EXPECT_EQ(a.skipped, 4u); // cycles 16..19 only
}

TEST(SchedulerTest, WakeAllMakesEveryComponentDue)
{
    Scheduler s;
    FakeComponent a("a"), b("b");
    s.add(a);
    s.add(b);
    a.nextEvent = cycleNever;
    b.nextEvent = cycleNever;
    s.runCycle(0);
    EXPECT_EQ(s.nextDue(), cycleNever);

    s.wakeAll(7);
    EXPECT_EQ(s.nextDue(), 7u);
    s.runCycle(7);
    EXPECT_EQ(a.ticks, (std::vector<Cycle>{0, 7}));
    EXPECT_EQ(b.ticks, (std::vector<Cycle>{0, 7}));
}

TEST(WakeQueueTest, FlatModeKeepsKeysAuthoritative)
{
    WakeQueue q;
    FakeComponent a("a"), b("b"), c("c");
    q.add(a, 30);
    q.add(b, 10);
    q.add(c, 20);

    q.setFlat(true);
    EXPECT_TRUE(q.flat());
    // Flat-mode wake and rekey are plain stores; nextDue() still sees
    // the true minimum via the linear scan.
    q.wake(0, 5);
    EXPECT_EQ(q.nextDue(), 5u);
    q.rekey(0, 40);
    q.rekey(1, 35);
    EXPECT_EQ(q.nextDue(), 20u);

    // Returning to sparse rebuilds the heap from the (mutated) keys:
    // pops must come out in (key, ordinal) order.
    q.setFlat(false);
    EXPECT_EQ(q.peekDue(100), 2u); // c@20
    q.rekey(2, 200);
    EXPECT_EQ(q.peekDue(100), 1u); // b@35
    q.rekey(1, 200);
    EXPECT_EQ(q.peekDue(100), 0u); // a@40
}

TEST(SchedulerTest, RegimeSwitchesWithHysteresis)
{
    Scheduler s;
    FakeComponent a("a"), b("b");
    s.add(a);
    s.add(b);

    // Both components due every cycle: the due-fraction is 8/8, so
    // the scheduler enters the dense regime after enterRunLen cycles.
    a.nextEvent = 0;
    b.nextEvent = 0;
    Cycle now = 0;
    for (std::uint32_t i = 0; i < Scheduler::enterRunLen; ++i)
        s.runCycle(now++);
    EXPECT_TRUE(s.denseRegime());
    EXPECT_EQ(s.stats().denseSpans, 1u);

    // Dense cycles tick the same components in the same order.
    s.runCycle(now++);
    EXPECT_EQ(a.ticks.back(), now - 1);
    EXPECT_EQ(b.ticks.back(), now - 1);

    // Go idle: zero components due per cycle. runCycle() at future
    // cycles with nothing due records due-fraction 0, and after
    // exitRunLen such cycles the scheduler drops back to the heap.
    a.nextEvent = cycleNever;
    b.nextEvent = cycleNever;
    s.runCycle(now++); // last dense tick re-keys both to never
    for (std::uint32_t i = 0; i < Scheduler::exitRunLen; ++i)
        s.runCycle(now++);
    EXPECT_FALSE(s.denseRegime());

    // Counters add up: every cycle ran exactly once, dense cycles
    // were counted while flat, and the histogram covered both ends.
    const auto &st = s.stats();
    EXPECT_EQ(st.cycles, now);
    EXPECT_GT(st.denseCycles, 0u);
    EXPECT_LT(st.denseCycles, st.cycles);
    EXPECT_GT(st.dueHist[7], 0u); // all-due cycles
    EXPECT_GT(st.dueHist[0], 0u); // idle cycles
}

TEST(SchedulerTest, DenseSweepMatchesHeapTickSequence)
{
    // Run the same staggered workload twice — once pinned sparse,
    // once forced through the dense regime — and require identical
    // per-component tick sequences. This is the observational
    // equivalence the regime switch rests on.
    const auto run = [](bool force_dense) {
        Scheduler s;
        FakeComponent a("a"), b("b"), c("c");
        s.add(a);
        s.add(b);
        s.add(c);
        // Staggered periods: a every cycle, b every 2nd, c every 3rd.
        std::vector<std::string> log;
        a.log = b.log = c.log = &log;
        Cycle now = 0;
        if (force_dense) {
            // Saturate the due-fraction until the switch happens.
            a.nextEvent = b.nextEvent = c.nextEvent = 0;
            while (!s.denseRegime())
                s.runCycle(now++);
        }
        const Cycle base = now;
        for (Cycle i = 0; i < 64; ++i) {
            a.nextEvent = now + 1;
            b.nextEvent = now + 2 - (now - base) % 2;
            c.nextEvent = now + 3 - (now - base) % 3;
            s.runCycle(now++);
        }
        // Strip the warm-up prefix and rebase cycle numbers so the
        // two logs are comparable.
        std::vector<std::string> out;
        for (const auto &entry : log) {
            const auto at = entry.find('@');
            const Cycle c2 = std::stoull(entry.substr(at + 1));
            if (c2 >= base)
                out.push_back(entry.substr(0, at + 1) +
                              std::to_string(c2 - base));
        }
        return out;
    };
    const auto sparse = run(false);
    const auto dense = run(true);
    EXPECT_EQ(sparse, dense);
    EXPECT_FALSE(sparse.empty());
}

} // namespace
} // namespace sim
} // namespace sac
