/**
 * @file
 * Tests for the ResultSink delivery path: plan-ordered deterministic
 * delivery for any worker count, the streaming JSON document sink's
 * byte-identity with the batch serializer, the checkpoint sink, and
 * RecordSource serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/engine.hh"
#include "sim/plan.hh"
#include "sim/result_io.hh"
#include "workload/suite.hh"

namespace sac {
namespace {

/** Small but real configuration so plans finish in milliseconds. */
GpuConfig
tinyConfig()
{
    GpuConfig cfg = GpuConfig::scaled(8);
    cfg.warpsPerCluster = 4;
    cfg.sac.profileWindow = 512;
    cfg.sac.profileMinRequests = 400;
    return cfg;
}

WorkloadProfile
tinyProfile(const std::string &name)
{
    WorkloadProfile p = findBenchmark(name);
    p.numKernels = 1;
    p.phases[0].accessesPerWarp = 32;
    return p;
}

ExperimentPlan
sixJobPlan()
{
    ExperimentPlan plan;
    for (const char *name : {"RN", "GEMM"}) {
        plan.addOrgSweep(tinyProfile(name), tinyConfig(),
                         {OrgKind::MemorySide, OrgKind::SmSide,
                          OrgKind::Sac});
    }
    return plan;
}

/** Self-deleting temp file path, one per test. */
struct TempFile
{
    explicit TempFile(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }
    ~TempFile() { std::remove(path.c_str()); }
    const std::string path;
};

/** Records the exact delivery sequence it observes. */
class RecordingSink : public ResultSink
{
  public:
    void
    onRecord(const EngineProgress &event) override
    {
        const std::lock_guard<std::mutex> hold(mutex_);
        indices.push_back(event.record.jobIndex);
        completed.push_back(event.completed);
        labels.push_back(event.job.label);
    }

    void
    onDone(const EngineDone &done) override
    {
        const std::lock_guard<std::mutex> hold(mutex_);
        doneCalls.push_back(done.total);
    }

    std::vector<std::size_t> indices;
    std::vector<std::size_t> completed;
    std::vector<std::string> labels;
    std::vector<std::size_t> doneCalls;

  private:
    std::mutex mutex_;
};

TEST(ResultSink, DeliveryIsPlanOrderedForAnyWorkerCount)
{
    const ExperimentPlan plan = sixJobPlan();
    for (const unsigned threads : {1u, 2u, 8u}) {
        ExperimentEngine engine(threads);
        RecordingSink sink;
        engine.addSink(sink);
        engine.run(plan);

        // Identical delivery sequence regardless of completion order:
        // jobIndex 0..n-1, completed counting 1..n, labels matching,
        // exactly one onDone after everything.
        ASSERT_EQ(sink.indices.size(), plan.size()) << threads;
        for (std::size_t i = 0; i < plan.size(); ++i) {
            EXPECT_EQ(sink.indices[i], i) << threads;
            EXPECT_EQ(sink.completed[i], i + 1) << threads;
            EXPECT_EQ(sink.labels[i], plan[i].label) << threads;
        }
        ASSERT_EQ(sink.doneCalls.size(), 1u) << threads;
        EXPECT_EQ(sink.doneCalls[0], plan.size()) << threads;
    }
}

TEST(ResultSink, MultipleSinksFireInAttachmentOrder)
{
    std::vector<int> order;
    class TaggingSink : public ResultSink
    {
      public:
        TaggingSink(std::vector<int> &order, int tag)
            : order_(order), tag_(tag)
        {}
        void
        onRecord(const EngineProgress &) override
        {
            order_.push_back(tag_);
        }

      private:
        std::vector<int> &order_;
        int tag_;
    };

    ExperimentPlan plan;
    plan.add(tinyProfile("RN"), tinyConfig(), OrgKind::MemorySide);
    TaggingSink first(order, 1), second(order, 2);
    ExperimentEngine engine(2);
    engine.addSink(first);
    engine.addSink(second);
    engine.run(plan);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(JsonDocumentSink, StreamsByteIdenticalToBatchSerializer)
{
    const ExperimentPlan plan = sixJobPlan();
    for (const unsigned threads : {1u, 2u, 8u}) {
        std::ostringstream streamed;
        result_io::JsonDocumentSink sink(streamed);
        ExperimentEngine engine(threads);
        engine.addSink(sink);
        const auto records = engine.run(plan);

        std::ostringstream batch;
        result_io::write(batch, records);
        EXPECT_EQ(streamed.str(), batch.str()) << threads;
    }
}

TEST(JsonDocumentSink, EmptyPlanStillProducesACompleteDocument)
{
    std::ostringstream streamed;
    result_io::JsonDocumentSink sink(streamed);
    ExperimentEngine engine(1);
    engine.addSink(sink);
    const auto records = engine.run(ExperimentPlan{});
    EXPECT_TRUE(records.empty());

    std::ostringstream batch;
    result_io::write(batch, records);
    EXPECT_EQ(streamed.str(), batch.str());
    EXPECT_NE(streamed.str().find("\"results\":[]"), std::string::npos);
}

TEST(CheckpointSink, AppendsEveryDeliveredRecord)
{
    const ExperimentPlan plan = sixJobPlan();
    TempFile ckpt("sac_sink_ckpt.jsonl");
    {
        result_io::CheckpointSink sink(ckpt.path);
        ExperimentEngine engine(2);
        engine.addSink(sink);
        engine.run(plan);
    }
    const auto restored = result_io::readCheckpointFile(ckpt.path);
    EXPECT_EQ(restored.size(), plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const auto key =
            result_io::checkpointKey(i, plan[i].label, plan[i].seed);
        ASSERT_TRUE(restored.count(key)) << key;
        EXPECT_EQ(restored.at(key).label, plan[i].label);
    }
}

TEST(CheckpointSink, UnopenablePathThrows)
{
    EXPECT_THROW(
        result_io::CheckpointSink("/proc/not/a/real/dir/ckpt.jsonl"),
        ValidationError);
}

TEST(RecordSource, NamesRoundTripAndVolatileSerialization)
{
    for (const auto source :
         {RecordSource::Simulated, RecordSource::Cache,
          RecordSource::Checkpoint}) {
        EXPECT_EQ(recordSourceFromName(toString(source)), source);
    }
    EXPECT_THROW(recordSourceFromName("teleported"), ValidationError);

    RunRecord rec;
    rec.label = "x";
    rec.source = RecordSource::Cache;
    // Canonical JSON omits the source (like wallMs); timing keeps it.
    const std::string canonical = result_io::recordToJson(rec);
    EXPECT_EQ(canonical.find("\"source\""), std::string::npos);
    const std::string timed = result_io::recordToJson(
        rec, result_io::WriteOptions{.timing = true});
    EXPECT_NE(timed.find("\"source\":\"cache\""), std::string::npos);
    EXPECT_EQ(result_io::recordFromJson(timed).source,
              RecordSource::Cache);
    // Absent source defaults to simulated on read.
    EXPECT_EQ(result_io::recordFromJson(canonical).source,
              RecordSource::Simulated);
}

} // namespace
} // namespace sac
