/** @file Unit tests for the configurable routing policies (Fig. 6). */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "mem/address_map.hh"
#include "noc/routing.hh"

namespace sac {
namespace {

class RoutingTest : public ::testing::Test
{
  protected:
    RoutingTest() : map(4, 2, 128) {}
    AddressMap map;
};

TEST_F(RoutingTest, MemorySideServesAtHome)
{
    MemorySideRouting r;
    const auto plan = r.route(0x1000, /*src=*/0, /*home=*/3, map);
    EXPECT_EQ(plan.serveChip, 3);
    EXPECT_EQ(plan.slice, map.sliceIndex(0x1000));
    EXPECT_EQ(plan.allocPartition, partitionLocal);
    EXPECT_FALSE(plan.homeLookup);
    EXPECT_FALSE(plan.bypassHomeLlc);
}

TEST_F(RoutingTest, SmSideServesLocallyAndBypassesRemoteHome)
{
    SmSideRouting r;
    const auto remote = r.route(0x1000, 0, 3, map);
    EXPECT_EQ(remote.serveChip, 0);
    EXPECT_TRUE(remote.bypassHomeLlc);
    EXPECT_FALSE(remote.homeLookup);

    const auto local = r.route(0x1000, 2, 2, map);
    EXPECT_EQ(local.serveChip, 2);
    EXPECT_FALSE(local.bypassHomeLlc);
}

TEST_F(RoutingTest, PartitionedUsesRemotePartitionAndHomeLookup)
{
    PartitionedRouting r;
    const auto remote = r.route(0x2000, 1, 3, map);
    EXPECT_EQ(remote.serveChip, 1);
    EXPECT_EQ(remote.allocPartition, partitionRemote);
    EXPECT_TRUE(remote.homeLookup);
    EXPECT_EQ(remote.homeAllocPartition, partitionLocal);

    const auto local = r.route(0x2000, 3, 3, map);
    EXPECT_EQ(local.serveChip, 3);
    EXPECT_EQ(local.allocPartition, partitionLocal);
    EXPECT_FALSE(local.homeLookup);
}

TEST_F(RoutingTest, ApplyRouteCopiesFields)
{
    PartitionedRouting r;
    const auto plan = r.route(0x3000, 0, 2, map);
    Packet pkt;
    pkt.lineAddr = 0x3000;
    applyRoute(pkt, plan);
    EXPECT_EQ(pkt.serveChip, 0);
    EXPECT_EQ(pkt.slice, plan.slice);
    EXPECT_EQ(pkt.allocPartition, partitionRemote);
    EXPECT_TRUE(pkt.homeLookup);
    EXPECT_FALSE(pkt.bypassLlc); // set on the bypassing hop, not here
}

TEST_F(RoutingTest, SliceChoiceIsChipAgnostic)
{
    // The same line maps to the same slice index on every chip, which
    // is what lets SM-side replicas live in same-index slices.
    MemorySideRouting mem;
    SmSideRouting sm;
    for (Addr a = 0; a < 64 * 128; a += 128) {
        EXPECT_EQ(mem.route(a, 0, 2, map).slice, sm.route(a, 1, 2, map).slice);
    }
}

TEST_F(RoutingTest, PolicyNames)
{
    EXPECT_STREQ(MemorySideRouting{}.name(), "memory-side");
    EXPECT_STREQ(SmSideRouting{}.name(), "SM-side");
    EXPECT_STREQ(PartitionedRouting{}.name(), "partitioned");
}

TEST_F(RoutingTest, OriginNames)
{
    EXPECT_STREQ(toString(ResponseOrigin::LocalLlc), "local-LLC");
    EXPECT_STREQ(toString(ResponseOrigin::RemoteMem), "remote-mem");
}

} // namespace
} // namespace sac
