/** @file Unit tests for the inter-chip network. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "noc/interchip.hh"

namespace sac {
namespace {

Packet
pkt(unsigned bytes, std::uint64_t id = 0)
{
    Packet p;
    p.bytes = bytes;
    p.id = id;
    return p;
}

TEST(InterChip, DeliversAfterHopLatency)
{
    InterChipNet icn(4, 1000.0, 80);
    icn.beginCycle();
    icn.send(0, 2, pkt(32, 7), 0);
    icn.tick(0);
    Packet out;
    EXPECT_FALSE(icn.receive(2, out, 79));
    EXPECT_TRUE(icn.receive(2, out, 80));
    EXPECT_EQ(out.id, 7u);
    EXPECT_FALSE(icn.receive(2, out, 80));
}

TEST(InterChip, EgressBandwidthThrottles)
{
    InterChipNet icn(2, 96.0, 0);
    for (int i = 0; i < 10; ++i)
        icn.send(0, 1, pkt(96), 0);
    int received = 0;
    Packet out;
    for (Cycle t = 0; t < 5; ++t) {
        icn.beginCycle();
        icn.tick(t);
        while (icn.receive(1, out, t))
            ++received;
    }
    // 96 B/cy with 96-byte packets: ~1 per cycle (+ burst carry).
    EXPECT_GE(received, 5);
    EXPECT_LE(received, 6);
}

TEST(InterChip, PerChipEgressIsIndependent)
{
    InterChipNet icn(3, 32.0, 0);
    icn.send(0, 2, pkt(32), 0);
    icn.send(1, 2, pkt(32), 0);
    icn.beginCycle();
    icn.tick(0);
    Packet out;
    int received = 0;
    while (icn.receive(2, out, 0))
        ++received;
    EXPECT_EQ(received, 2); // both senders used their own budget
}

TEST(InterChip, CountsBytesAndInFlight)
{
    InterChipNet icn(2, 1000.0, 10);
    icn.send(0, 1, pkt(64), 0);
    EXPECT_EQ(icn.inFlight(), 1u);
    icn.beginCycle();
    icn.tick(0);
    EXPECT_EQ(icn.bytesTransferred(), 64u);
    EXPECT_EQ(icn.inFlight(), 1u); // now in the arrival queue
    Packet out;
    ASSERT_TRUE(icn.receive(1, out, 10));
    EXPECT_EQ(icn.inFlight(), 0u);
}

TEST(InterChip, SelfSendPanics)
{
    InterChipNet icn(2, 10.0, 1);
    EXPECT_THROW(icn.send(1, 1, pkt(8), 0), PanicError);
    EXPECT_THROW(icn.send(0, 5, pkt(8), 0), PanicError);
}

TEST(InterChip, SetEgressBandwidth)
{
    InterChipNet icn(2, 8.0, 0);
    icn.setEgressBandwidth(4096.0);
    for (int i = 0; i < 8; ++i)
        icn.send(0, 1, pkt(128), 0);
    icn.beginCycle();
    icn.tick(0);
    Packet out;
    int n = 0;
    while (icn.receive(1, out, 0))
        ++n;
    EXPECT_EQ(n, 8);
}

} // namespace
} // namespace sac
