/** @file Unit and property tests for the bandwidth-limited queue. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "noc/queue.hh"

namespace sac {
namespace {

Packet
pkt(unsigned bytes)
{
    Packet p;
    p.bytes = bytes;
    return p;
}

TEST(BwQueue, LatencyGatesDelivery)
{
    BwQueue q(1000.0, 10);
    q.push(pkt(8), 0);
    Packet out;
    q.beginCycle();
    EXPECT_FALSE(q.tryPop(out, 9));
    EXPECT_TRUE(q.tryPop(out, 10));
}

TEST(BwQueue, BandwidthLimitsDrainPerCycle)
{
    BwQueue q(128.0, 0);
    for (int i = 0; i < 4; ++i)
        q.push(pkt(128), 0);
    Packet out;
    int drained = 0;
    q.beginCycle();
    while (q.tryPop(out, 0))
        ++drained;
    // First cycle allows the burst carry (2x budget cap): two packets.
    EXPECT_LE(drained, 2);
    for (Cycle t = 1; t <= 4; ++t) {
        q.beginCycle();
        while (q.tryPop(out, t))
            ++drained;
    }
    EXPECT_EQ(drained, 4);
}

TEST(BwQueue, FractionalBandwidthAveragesOut)
{
    // 56 B/cy with 128-byte packets: ~0.4375 packets per cycle.
    BwQueue q(56.0, 0);
    for (int i = 0; i < 40; ++i)
        q.push(pkt(128), 0);
    Packet out;
    int drained = 0;
    for (Cycle t = 0; t < 100; ++t) {
        q.beginCycle();
        while (q.tryPop(out, t))
            ++drained;
    }
    EXPECT_GE(drained, 40 * 100 / 229 - 2); // ~43.75 - but only 40 queued
    EXPECT_EQ(drained, 40);
    EXPECT_EQ(q.bytesDrained(), 40u * 128);
}

TEST(BwQueue, ThroughputMatchesBandwidthProperty)
{
    for (double bw : {16.0, 56.0, 96.0, 256.0}) {
        BwQueue q(bw, 0);
        for (int i = 0; i < 10000; ++i)
            q.push(pkt(128), 0);
        Packet out;
        std::uint64_t drained_bytes = 0;
        const Cycle horizon = 1000;
        for (Cycle t = 0; t < horizon; ++t) {
            q.beginCycle();
            while (q.tryPop(out, t))
                drained_bytes += out.bytes;
        }
        const double expected = bw * static_cast<double>(horizon);
        EXPECT_NEAR(static_cast<double>(drained_bytes), expected,
                    expected * 0.02 + 256.0)
            << "bw=" << bw;
    }
}

TEST(BwQueue, CapacityBackpressure)
{
    BwQueue q(8.0, 0, 2);
    EXPECT_TRUE(q.canPush());
    q.push(pkt(8), 0);
    q.push(pkt(8), 0);
    EXPECT_FALSE(q.canPush());
    EXPECT_THROW(q.push(pkt(8), 0), PanicError);
}

TEST(BwQueue, PeekReadyAndPopHeadPreserveOrder)
{
    BwQueue q(1000.0, 0);
    Packet a = pkt(8);
    a.id = 1;
    Packet b = pkt(8);
    b.id = 2;
    q.push(a, 0);
    q.push(b, 0);
    q.beginCycle();
    const Packet *head = q.peekReady(0);
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->id, 1u);
    q.popHead();
    head = q.peekReady(0);
    ASSERT_NE(head, nullptr);
    EXPECT_EQ(head->id, 2u);
}

TEST(BwQueue, OversizedPacketsSerializeAsDebt)
{
    // A 128-byte packet through an 8 B/cy link: the first packet
    // drains on the first credited cycle, then the debt blocks the
    // next one for ~16 cycles.
    BwQueue q(8.0, 0);
    q.push(pkt(128), 0);
    q.push(pkt(128), 0);
    q.beginCycle();
    ASSERT_NE(q.peekReady(0), nullptr);
    q.popHead();
    EXPECT_EQ(q.peekReady(0), nullptr); // in debt now
    Cycle t = 1;
    Packet out;
    int waited = 0;
    for (; t < 100; ++t) {
        q.beginCycle();
        if (q.tryPop(out, t))
            break;
        ++waited;
    }
    EXPECT_GE(waited, 14);
    EXPECT_LE(waited, 16);
}

TEST(BwQueue, CreditCapsAtTwoCyclesOfBandwidth)
{
    // An idle queue accrues at most one cycle of carry: after any
    // number of empty cycles the first busy cycle drains 2*bw bytes,
    // not the whole backlog.
    BwQueue q(128.0, 0);
    for (Cycle t = 0; t < 50; ++t)
        q.beginCycle(); // idle accrual, must clamp at 256 bytes
    for (int i = 0; i < 8; ++i)
        q.push(pkt(128), 50);
    Packet out;
    int drained = 0;
    while (q.tryPop(out, 50))
        ++drained;
    EXPECT_EQ(drained, 2); // exactly 2*bw / 128 packets
}

TEST(BwQueue, LatencyAndCapacityInteract)
{
    // A full queue stays full while its head is still in flight:
    // capacity is freed by draining, and draining waits on latency.
    BwQueue q(1000.0, 5, 2);
    q.push(pkt(8), 0);
    q.push(pkt(8), 0);
    EXPECT_FALSE(q.canPush());
    Packet out;
    for (Cycle t = 0; t < 5; ++t) {
        q.beginCycle();
        EXPECT_FALSE(q.tryPop(out, t));
        EXPECT_FALSE(q.canPush());
    }
    q.beginCycle();
    EXPECT_TRUE(q.tryPop(out, 5));
    EXPECT_TRUE(q.canPush());
    // The freed slot accepts a push whose latency clock starts now.
    q.push(pkt(8), 5);
    EXPECT_TRUE(q.tryPop(out, 5)); // the remaining original packet
    EXPECT_FALSE(q.tryPop(out, 9));
    q.beginCycle();
    EXPECT_TRUE(q.tryPop(out, 10));
}

TEST(BwQueue, NextEventCycleContract)
{
    // Empty: nothing will ever happen on its own.
    BwQueue q(8.0, 10);
    EXPECT_EQ(q.nextEventCycle(0), cycleNever);

    // Head still in flight: the event is its arrival cycle.
    q.push(pkt(8), 0);
    EXPECT_EQ(q.nextEventCycle(0), Cycle{10});
    EXPECT_EQ(q.nextEventCycle(7), Cycle{10});

    // Head ready and credit available: work right now.
    q.beginCycle();
    EXPECT_EQ(q.nextEventCycle(10), Cycle{10});
}

TEST(BwQueue, NextEventCycleAccountsForThisCyclesRefill)
{
    // Drain a 128-byte packet through an 8 B/cy queue: the budget
    // goes to -120 and the next packet waits on repayment. While the
    // debt is deeper than one refill the event is "next cycle"
    // (conservative; skipped refills are replayed), but once a single
    // refill would go positive the event must be "now" — the tick's
    // own beginCycle() refill precedes draining.
    BwQueue q(8.0, 0);
    q.push(pkt(128), 0);
    q.push(pkt(8), 0);
    q.beginCycle();
    ASSERT_NE(q.peekReady(0), nullptr);
    q.popHead(); // budget now 8 - 128 = -120
    Cycle t = 0;
    Packet out;
    for (;; ++t) {
        const Cycle next = q.nextEventCycle(t);
        ASSERT_NE(next, cycleNever);
        if (next == t) {
            // Claimed ready this very cycle: the reference loop's
            // refill-then-drain must succeed.
            q.beginCycle();
            ASSERT_TRUE(q.tryPop(out, t));
            break;
        }
        ASSERT_EQ(next, t + 1); // debt: one conservative step
        q.beginCycle();
        ASSERT_FALSE(q.tryPop(out, t));
        ASSERT_LT(t, Cycle{100}) << "debt never repaid";
    }
    EXPECT_EQ(t, Cycle{15}); // 120 / 8 = 15 refills to go positive
}

TEST(BwQueue, SkipIdleCyclesMatchesBeginCycleLoop)
{
    // Bit-exactness property behind fast-forward: replaying N idle
    // cycles must leave the identical budget double as N beginCycle()
    // calls, including debt repayment and saturation, for awkward
    // fractional bandwidths.
    for (double bw : {7.3, 56.0, 0.625}) {
        for (Cycle n : {Cycle{1}, Cycle{7}, Cycle{1000}}) {
            BwQueue a(bw, 0);
            BwQueue b(bw, 0);
            // Put both queues into identical debt.
            a.push(pkt(128), 0);
            b.push(pkt(128), 0);
            a.beginCycle();
            b.beginCycle();
            a.popHead();
            b.popHead();
            for (Cycle t = 0; t < n; ++t)
                a.beginCycle();
            b.skipIdleCycles(n);
            a.push(pkt(8), n);
            b.push(pkt(8), n);
            Packet out_a, out_b;
            for (Cycle t = n; t < n + 400; ++t) {
                a.beginCycle();
                b.beginCycle();
                const bool pa = a.tryPop(out_a, t);
                const bool pb = b.tryPop(out_b, t);
                ASSERT_EQ(pa, pb) << "bw=" << bw << " n=" << n
                                  << " diverged at t=" << t;
                if (pa)
                    break;
            }
        }
    }
}

TEST(BwQueue, SetBandwidthTakesEffect)
{
    BwQueue q(8.0, 0);
    q.setBandwidth(1024.0);
    for (int i = 0; i < 4; ++i)
        q.push(pkt(128), 0);
    q.beginCycle();
    Packet out;
    int n = 0;
    while (q.tryPop(out, 0))
        ++n;
    EXPECT_EQ(n, 4);
}

} // namespace
} // namespace sac
