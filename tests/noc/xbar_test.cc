/** @file Unit tests for the crossbar port bundle. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "noc/xbar.hh"

namespace sac {
namespace {

Packet
pkt(unsigned bytes, std::uint64_t id = 0)
{
    Packet p;
    p.bytes = bytes;
    p.id = id;
    return p;
}

TEST(Xbar, PortsAreIndependent)
{
    Xbar x(4, 128.0, 0);
    x.push(0, pkt(128, 1), 0);
    x.push(3, pkt(128, 2), 0);
    x.beginCycle();
    Packet out;
    EXPECT_TRUE(x.tryPop(0, out, 0));
    EXPECT_EQ(out.id, 1u);
    EXPECT_FALSE(x.tryPop(1, out, 0));
    EXPECT_TRUE(x.tryPop(3, out, 0));
    EXPECT_EQ(out.id, 2u);
}

TEST(Xbar, PerPortBandwidth)
{
    Xbar x(2, 128.0, 0);
    for (int i = 0; i < 6; ++i)
        x.push(0, pkt(128), 0);
    Packet out;
    int drained = 0;
    for (Cycle t = 0; t < 3; ++t) {
        x.beginCycle();
        while (x.tryPop(0, out, t))
            ++drained;
    }
    // 128 B/cy with 128-byte packets: one per cycle steady state
    // (plus the initial burst carry).
    EXPECT_LE(drained, 4);
    EXPECT_GE(drained, 3);
}

TEST(Xbar, TraversalLatency)
{
    Xbar x(1, 1000.0, 12);
    x.push(0, pkt(8), 100);
    x.beginCycle();
    Packet out;
    EXPECT_FALSE(x.tryPop(0, out, 111));
    EXPECT_TRUE(x.tryPop(0, out, 112));
}

TEST(Xbar, QueueDepthAndBytesReporting)
{
    Xbar x(2, 64.0, 0);
    x.push(1, pkt(64), 0);
    x.push(1, pkt(64), 0);
    EXPECT_EQ(x.queued(1), 2u);
    x.beginCycle();
    Packet out;
    x.tryPop(1, out, 0);
    EXPECT_EQ(x.bytesDrained(), 64u);
}

TEST(Xbar, BadPortPanics)
{
    Xbar x(2, 64.0, 0);
    EXPECT_THROW(x.push(2, pkt(8), 0), PanicError);
    EXPECT_THROW(x.push(-1, pkt(8), 0), PanicError);
}

TEST(Xbar, SetPortBandwidth)
{
    Xbar x(1, 8.0, 0);
    x.setPortBandwidth(512.0);
    for (int i = 0; i < 4; ++i)
        x.push(0, pkt(128), 0);
    x.beginCycle();
    Packet out;
    int n = 0;
    while (x.tryPop(0, out, 0))
        ++n;
    EXPECT_EQ(n, 4);
}

} // namespace
} // namespace sac
