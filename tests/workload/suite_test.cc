/** @file Unit tests for the Table 4 benchmark suite. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "workload/suite.hh"

namespace sac {
namespace {

TEST(Suite, HasSixteenBenchmarks)
{
    EXPECT_EQ(benchmarkSuite().size(), 16u);
}

TEST(Suite, GroupsSplitEightEight)
{
    EXPECT_EQ(smSidePreferredSuite().size(), 8u);
    EXPECT_EQ(memorySidePreferredSuite().size(), 8u);
}

TEST(Suite, Table4ValuesSpotCheck)
{
    const auto &rn = findBenchmark("RN");
    EXPECT_EQ(rn.ctas, 512u);
    EXPECT_DOUBLE_EQ(rn.footprintMB, 21.0);
    EXPECT_DOUBLE_EQ(rn.trueSharedMB, 11.0);
    EXPECT_DOUBLE_EQ(rn.falseSharedMB, 4.0);
    EXPECT_TRUE(rn.smSidePreferred);

    const auto &nn = findBenchmark("NN");
    EXPECT_EQ(nn.ctas, 60000u);
    EXPECT_DOUBLE_EQ(nn.footprintMB, 1388.0);
    EXPECT_DOUBLE_EQ(nn.trueSharedMB, 154.0);
    EXPECT_DOUBLE_EQ(nn.falseSharedMB, 0.0);
    EXPECT_FALSE(nn.smSidePreferred);

    const auto &lud = findBenchmark("LUD");
    EXPECT_EQ(lud.ctas, 131068u);
    EXPECT_DOUBLE_EQ(lud.trueSharedMB, 38.0);
    EXPECT_DOUBLE_EQ(lud.falseSharedMB, 51.0);
}

TEST(Suite, Table4OrderMatchesPaper)
{
    const char *expected[] = {"RN", "AN", "SN", "CFD", "BFS", "3DC",
                              "BS", "BT", "SRAD", "GEMM", "LUD", "STEN",
                              "3MM", "BP", "DWT", "NN"};
    const auto &suite = benchmarkSuite();
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Suite, SharedNeverExceedsFootprint)
{
    for (const auto &p : benchmarkSuite()) {
        EXPECT_LE(p.trueSharedMB + p.falseSharedMB, p.footprintMB)
            << p.name;
        EXPECT_GE(p.privateMB(), 0.0);
    }
}

TEST(Suite, PhasesAreSane)
{
    for (const auto &p : benchmarkSuite()) {
        ASSERT_FALSE(p.phases.empty()) << p.name;
        for (const auto &ph : p.phases) {
            EXPECT_GE(ph.trueFrac, 0.0);
            EXPECT_GE(ph.falseFrac, 0.0);
            EXPECT_LE(ph.trueFrac + ph.falseFrac, 1.0) << p.name;
            EXPECT_GT(ph.accessesPerWarp, 0u) << p.name;
            EXPECT_GT(ph.computeGap, 0u) << p.name;
        }
        EXPECT_GE(p.numKernels, 1) << p.name;
    }
}

TEST(Suite, BfsAlternatesKernels)
{
    const auto &bfs = findBenchmark("BFS");
    ASSERT_EQ(bfs.phases.size(), 2u);
    EXPECT_GT(bfs.numKernels, 2);
    // K1 has the large flat frontier, K2 the small hot one.
    EXPECT_GT(bfs.phases[0].trueHotMB, bfs.phases[1].trueHotMB);
}

TEST(Suite, UnknownBenchmarkIsFatal)
{
    EXPECT_THROW(findBenchmark("NOPE"), FatalError);
}

} // namespace
} // namespace sac
