/**
 * @file
 * Scenario parsing, validation and the stream trace mux.
 *
 * The reader shares the protocol's convention — every numeric field
 * range-checked with the field name in the ValidationError — and the
 * mux guarantees one identity: a one-stream scenario produces the
 * exact access sequence of a bare SharingTraceGen, which is what
 * keeps single-stream scenario runs byte-identical to legacy runs.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/log.hh"
#include "gpu/cta_scheduler.hh"
#include "workload/scenario.hh"
#include "workload/suite.hh"
#include "workload/tracegen.hh"

namespace sac {
namespace {

std::string
doc(const std::string &streams)
{
    return std::string("{\"schema\":\"sac.scenario.v1\",\"streams\":") +
           streams + "}";
}

TEST(ScenarioParse, ReadsStreamsWithDefaults)
{
    const Scenario scn = scenarioFromJson(
        doc("[{\"benchmark\":\"CFD\"},"
            "{\"benchmark\":\"SRAD\",\"launchCycle\":4096,"
            "\"clusterShare\":2.0,\"kernels\":3,\"apw\":64,"
            "\"inputScale\":0.5}]"));
    ASSERT_EQ(scn.streams.size(), 2u);
    EXPECT_TRUE(scn.multiTenant());
    EXPECT_EQ(scn.name(), "CFD+SRAD");

    EXPECT_EQ(scn.streams[0].profile.name, "CFD");
    EXPECT_EQ(scn.streams[0].launchCycle, 0u);
    EXPECT_DOUBLE_EQ(scn.streams[0].clusterShare, 1.0);
    EXPECT_EQ(scn.streams[0].kernelCount(),
              findBenchmark("CFD").numKernels);

    EXPECT_EQ(scn.streams[1].launchCycle, 4096u);
    EXPECT_DOUBLE_EQ(scn.streams[1].clusterShare, 2.0);
    EXPECT_EQ(scn.streams[1].kernelCount(), 3);
    EXPECT_EQ(scn.streams[1].profile.phases[0].accessesPerWarp, 64u);
}

TEST(ScenarioParse, SingleStreamIsNotMultiTenant)
{
    const Scenario scn =
        scenarioFromJson(doc("[{\"benchmark\":\"RN\"}]"));
    EXPECT_FALSE(scn.multiTenant());
    EXPECT_EQ(scn.name(), "RN");
}

TEST(ScenarioParse, RejectsBadDocuments)
{
    // Wrong or missing schema.
    EXPECT_THROW(scenarioFromJson("{\"streams\":[]}"), ValidationError);
    EXPECT_THROW(scenarioFromJson(
                     "{\"schema\":\"sac.scenario.v2\",\"streams\":[]}"),
                 ValidationError);
    // Missing / empty / oversized streams.
    EXPECT_THROW(scenarioFromJson("{\"schema\":\"sac.scenario.v1\"}"),
                 ValidationError);
    EXPECT_THROW(scenarioFromJson(doc("[]")), ValidationError);
    std::string many = "[";
    for (std::size_t i = 0; i <= maxScenarioStreams; ++i) {
        if (i)
            many += ",";
        many += "{\"benchmark\":\"RN\"}";
    }
    many += "]";
    EXPECT_THROW(scenarioFromJson(doc(many)), ValidationError);
}

TEST(ScenarioParse, RejectsOutOfRangeFieldsWithFieldName)
{
    try {
        scenarioFromJson(doc("[{\"benchmark\":\"RN\",\"apw\":0}]"));
        FAIL() << "apw 0 accepted";
    } catch (const ValidationError &e) {
        EXPECT_NE(std::string(e.what()).find("apw"), std::string::npos);
    }
    EXPECT_THROW(
        scenarioFromJson(
            doc("[{\"benchmark\":\"RN\",\"clusterShare\":0.0}]")),
        ValidationError);
    EXPECT_THROW(
        scenarioFromJson(doc("[{\"benchmark\":\"RN\",\"kernels\":0}]")),
        ValidationError);
    EXPECT_THROW(
        scenarioFromJson(
            doc("[{\"benchmark\":\"RN\",\"inputScale\":1e999}]")),
        ValidationError);
}

TEST(ScenarioParse, UnknownBenchmarkSuggestsNearestName)
{
    try {
        scenarioFromJson(doc("[{\"benchmark\":\"CDF\"}]"));
        FAIL() << "unknown benchmark accepted";
    } catch (const ValidationError &e) {
        EXPECT_NE(std::string(e.what()).find("CFD"), std::string::npos);
    }
}

TEST(ScenarioPartition, SharesAndFloors)
{
    // Equal shares split evenly.
    auto r = CtaScheduler::partitionClusters(8, {1.0, 1.0});
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].first, 0u);
    EXPECT_EQ(r[0].count, 4u);
    EXPECT_EQ(r[1].first, 4u);
    EXPECT_EQ(r[1].count, 4u);

    // Weighted split; ranges stay contiguous and exhaustive.
    r = CtaScheduler::partitionClusters(8, {3.0, 1.0});
    EXPECT_EQ(r[0].count, 6u);
    EXPECT_EQ(r[1].count, 2u);

    // A tiny share still gets one cluster.
    r = CtaScheduler::partitionClusters(8, {1000.0, 1e-3});
    EXPECT_EQ(r[0].count, 7u);
    EXPECT_EQ(r[1].count, 1u);
    EXPECT_EQ(r[1].first, 7u);

    // More streams than clusters cannot be placed.
    EXPECT_THROW(CtaScheduler::partitionClusters(2, {1.0, 1.0, 1.0}),
                 ValidationError);
}

TEST(StreamTraceMux, OneStreamIsTheIdentity)
{
    GpuConfig cfg = GpuConfig::scaled(8);
    cfg.warpsPerCluster = 4;
    const WorkloadProfile profile = findBenchmark("CFD");

    SharingTraceGen bare(profile, cfg, 7);
    StreamTraceMux mux(Scenario::fromProfile(profile), cfg, 7);
    ASSERT_EQ(mux.numStreams(), 1);

    bare.beginKernel(0);
    mux.beginStreamKernel(0, 0);
    for (int i = 0; i < 2000; ++i) {
        const ChipId chip = i % 2;
        const ClusterId cluster = (i / 2) % cfg.clustersPerChip;
        const int warp = i % cfg.warpsPerCluster;
        const MemAccess a = bare.next(chip, cluster, warp);
        const MemAccess b = mux.next(chip, cluster, warp);
        ASSERT_EQ(a.lineAddr, b.lineAddr) << "access " << i;
        ASSERT_EQ(a.sector, b.sector) << "access " << i;
        ASSERT_EQ(a.type, b.type) << "access " << i;
        ASSERT_EQ(a.gap, b.gap) << "access " << i;
    }
}

TEST(StreamTraceMux, StreamsAreDisjointAndPartitioned)
{
    GpuConfig cfg = GpuConfig::scaled(8);
    const Scenario scn = scenarioFromJson(
        doc("[{\"benchmark\":\"CFD\"},{\"benchmark\":\"SRAD\"}]"));
    StreamTraceMux mux(scn, cfg, 1);
    ASSERT_EQ(mux.numStreams(), 2);

    // The cluster partition covers every cluster exactly once.
    const auto &ranges = mux.clusterRanges();
    ASSERT_EQ(ranges.size(), 2u);
    EXPECT_EQ(ranges[0].first, 0u);
    EXPECT_EQ(ranges[0].count + ranges[1].count,
              static_cast<std::uint64_t>(cfg.clustersPerChip));

    // Stream 1's addresses live in a disjoint window (offset 1 << 38).
    mux.beginStreamKernel(0, 0);
    mux.beginStreamKernel(1, 0);
    const ClusterId c1 = static_cast<ClusterId>(ranges[1].first);
    for (int i = 0; i < 500; ++i) {
        const MemAccess a = mux.next(0, 0, i % cfg.warpsPerCluster);
        const MemAccess b = mux.next(0, c1, i % cfg.warpsPerCluster);
        EXPECT_LT(a.lineAddr, Addr(1) << 38);
        EXPECT_GE(b.lineAddr, Addr(1) << 38);
        EXPECT_EQ(mux.streamOfCluster(0), 0);
        EXPECT_EQ(mux.streamOfCluster(c1), 1);
    }
}

} // namespace
} // namespace sac
