/** @file Unit and property tests for the sharing trace generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/config.hh"
#include "workload/tracegen.hh"

namespace sac {
namespace {

GpuConfig
smallConfig()
{
    GpuConfig cfg = GpuConfig::scaled(4);
    cfg.warpsPerCluster = 4;
    return cfg;
}

WorkloadProfile
smallProfile()
{
    WorkloadProfile p;
    p.name = "test";
    p.ctas = 64;
    p.footprintMB = 8;
    p.trueSharedMB = 2;
    p.falseSharedMB = 2;
    p.phases[0].trueFrac = 0.3;
    p.phases[0].falseFrac = 0.3;
    p.phases[0].writeFrac = 0.25;
    p.phases[0].rereadFrac = 0.0; // keep streams pure for class checks
    return p;
}

TEST(TraceGen, ClassificationMatchesRegions)
{
    auto cfg = smallConfig();
    SharingTraceGen gen(smallProfile(), cfg, 1);
    std::map<SharingClass, int> seen;
    for (int i = 0; i < 20000; ++i) {
        const auto acc = gen.next(i % 4, 0, i % 4);
        ++seen[gen.classify(acc.lineAddr)];
    }
    EXPECT_GT(seen[SharingClass::TrueShared], 0);
    EXPECT_GT(seen[SharingClass::FalseShared], 0);
    EXPECT_GT(seen[SharingClass::Private], 0);
}

TEST(TraceGen, AccessMixMatchesFractions)
{
    auto cfg = smallConfig();
    SharingTraceGen gen(smallProfile(), cfg, 1);
    int true_n = 0;
    int false_n = 0;
    int priv_n = 0;
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const auto acc = gen.next(i % 4, (i / 4) % 8, (i / 32) % 4);
        switch (gen.classify(acc.lineAddr)) {
          case SharingClass::TrueShared: ++true_n; break;
          case SharingClass::FalseShared: ++false_n; break;
          case SharingClass::Private: ++priv_n; break;
        }
        writes += acc.type == AccessType::Write ? 1 : 0;
    }
    EXPECT_NEAR(true_n / double(n), 0.3, 0.02);
    EXPECT_NEAR(false_n / double(n), 0.3, 0.02);
    EXPECT_NEAR(priv_n / double(n), 0.4, 0.02);
    EXPECT_NEAR(writes / double(n), 0.25, 0.02);
}

TEST(TraceGen, FalseSharedLinesAreChipDisjoint)
{
    // The defining property of false sharing: chips share pages but
    // never lines.
    auto cfg = smallConfig();
    SharingTraceGen gen(smallProfile(), cfg, 3);
    std::map<Addr, int> owner;
    for (int i = 0; i < 40000; ++i) {
        const ChipId chip = i % 4;
        const auto acc = gen.next(chip, 0, i % 4);
        if (gen.classify(acc.lineAddr) != SharingClass::FalseShared)
            continue;
        auto [it, inserted] = owner.emplace(acc.lineAddr, chip);
        if (!inserted) {
            ASSERT_EQ(it->second, chip) << "line 0x" << std::hex
                                        << acc.lineAddr;
        }
    }
    EXPECT_GT(owner.size(), 100u);
}

TEST(TraceGen, FalseSharedPagesAreShared)
{
    auto cfg = smallConfig();
    SharingTraceGen gen(smallProfile(), cfg, 3);
    std::map<Addr, std::set<ChipId>> page_chips;
    for (int i = 0; i < 40000; ++i) {
        const ChipId chip = i % 4;
        const auto acc = gen.next(chip, 0, i % 4);
        if (gen.classify(acc.lineAddr) == SharingClass::FalseShared)
            page_chips[acc.lineAddr / cfg.pageBytes].insert(chip);
    }
    int shared_pages = 0;
    for (const auto &[page, chips] : page_chips)
        shared_pages += chips.size() >= 2 ? 1 : 0;
    // The hot pages get touched by everyone.
    EXPECT_GT(shared_pages, static_cast<int>(page_chips.size()) / 2);
}

TEST(TraceGen, PrivateLinesAreChipDisjoint)
{
    auto cfg = smallConfig();
    SharingTraceGen gen(smallProfile(), cfg, 5);
    std::map<Addr, int> owner;
    for (int i = 0; i < 40000; ++i) {
        const ChipId chip = i % 4;
        const auto acc = gen.next(chip, 0, i % 4);
        if (gen.classify(acc.lineAddr) != SharingClass::Private)
            continue;
        auto [it, inserted] = owner.emplace(acc.lineAddr, chip);
        if (!inserted) {
            ASSERT_EQ(it->second, chip);
        }
    }
}

TEST(TraceGen, TrueSharedLinesAreActuallyShared)
{
    auto cfg = smallConfig();
    SharingTraceGen gen(smallProfile(), cfg, 7);
    std::map<Addr, std::set<ChipId>> chips_per_line;
    for (int i = 0; i < 80000; ++i) {
        const ChipId chip = i % 4;
        const auto acc = gen.next(chip, 0, i % 4);
        if (gen.classify(acc.lineAddr) == SharingClass::TrueShared)
            chips_per_line[acc.lineAddr].insert(chip);
    }
    int multi = 0;
    for (const auto &[line, chips] : chips_per_line)
        multi += chips.size() >= 2 ? 1 : 0;
    // Hot truly shared lines get touched by several chips.
    EXPECT_GT(multi, static_cast<int>(chips_per_line.size()) / 3);
}

TEST(TraceGen, HotSetConcentratesAccesses)
{
    auto cfg = smallConfig();
    auto p = smallProfile();
    p.phases[0].trueFrac = 1.0;
    p.phases[0].falseFrac = 0.0;
    p.phases[0].trueHotMB = 0.25; // of 2 MB region
    p.phases[0].trueHotFrac = 0.9;
    SharingTraceGen gen(p, cfg, 1);
    const std::uint64_t hot_bytes = 256 * 1024;
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto acc = gen.next(i % 4, 0, i % 4);
        hot += acc.lineAddr < hot_bytes ? 1 : 0;
    }
    EXPECT_NEAR(hot / double(n), 0.9, 0.03);
}

TEST(TraceGen, RereadRepeatsRecentLines)
{
    auto cfg = smallConfig();
    auto p = smallProfile();
    p.phases[0].rereadFrac = 0.5;
    SharingTraceGen gen(p, cfg, 1);
    std::set<Addr> recent;
    int rereads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto acc = gen.next(0, 0, 0);
        if (recent.contains(acc.lineAddr))
            ++rereads;
        recent.insert(acc.lineAddr);
    }
    EXPECT_GT(rereads, n * 4 / 10);
}

TEST(TraceGen, DeterministicAcrossInstances)
{
    auto cfg = smallConfig();
    SharingTraceGen a(smallProfile(), cfg, 42);
    SharingTraceGen b(smallProfile(), cfg, 42);
    for (int i = 0; i < 2000; ++i) {
        const auto x = a.next(1, 2, 3);
        const auto y = b.next(1, 2, 3);
        EXPECT_EQ(x.lineAddr, y.lineAddr);
        EXPECT_EQ(x.type, y.type);
        EXPECT_EQ(x.gap, y.gap);
    }
}

TEST(TraceGen, PhasesChangeBehaviour)
{
    auto cfg = smallConfig();
    auto p = smallProfile();
    KernelPhase second = p.phases[0];
    second.trueFrac = 0.0;
    second.falseFrac = 0.0;
    p.phases.push_back(second);
    SharingTraceGen gen(p, cfg, 1);
    gen.beginKernel(1);
    for (int i = 0; i < 5000; ++i) {
        const auto acc = gen.next(i % 4, 0, i % 4);
        EXPECT_EQ(gen.classify(acc.lineAddr), SharingClass::Private);
    }
}

TEST(TraceGen, SectoredConfigEmitsSectors)
{
    auto cfg = smallConfig();
    cfg.sectorsPerLine = 4;
    SharingTraceGen gen(smallProfile(), cfg, 1);
    std::set<unsigned> sectors;
    for (int i = 0; i < 1000; ++i)
        sectors.insert(gen.next(0, 0, 0).sector);
    EXPECT_EQ(sectors.size(), 4u);
}

TEST(TraceGen, ZeroSharedRegionsRedistribute)
{
    auto cfg = smallConfig();
    auto p = smallProfile();
    p.trueSharedMB = 0;
    p.falseSharedMB = 0;
    SharingTraceGen gen(p, cfg, 1);
    for (int i = 0; i < 5000; ++i) {
        const auto acc = gen.next(i % 4, 0, 0);
        EXPECT_EQ(gen.classify(acc.lineAddr), SharingClass::Private);
    }
}

} // namespace
} // namespace sac
