/** @file Unit tests for workload profiles. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "workload/profile.hh"

namespace sac {
namespace {

TEST(Profile, PrivateIsFootprintMinusShared)
{
    WorkloadProfile p;
    p.footprintMB = 100;
    p.trueSharedMB = 30;
    p.falseSharedMB = 20;
    EXPECT_DOUBLE_EQ(p.privateMB(), 50.0);
}

TEST(Profile, PrivateNeverNegative)
{
    WorkloadProfile p;
    p.footprintMB = 10;
    p.trueSharedMB = 8;
    p.falseSharedMB = 8;
    EXPECT_DOUBLE_EQ(p.privateMB(), 0.0);
}

TEST(Profile, ScaledDataDividesEverything)
{
    WorkloadProfile p;
    p.footprintMB = 96;
    p.trueSharedMB = 16;
    p.falseSharedMB = 32;
    p.phases[0].trueHotMB = 8;
    p.phases[0].falseHotMB = 12;
    p.phases[0].privHotMB = 4;
    const auto s = p.scaledData(4.0);
    EXPECT_DOUBLE_EQ(s.footprintMB, 24.0);
    EXPECT_DOUBLE_EQ(s.trueSharedMB, 4.0);
    EXPECT_DOUBLE_EQ(s.falseSharedMB, 8.0);
    EXPECT_DOUBLE_EQ(s.phases[0].trueHotMB, 2.0);
    EXPECT_DOUBLE_EQ(s.phases[0].falseHotMB, 3.0);
    EXPECT_DOUBLE_EQ(s.phases[0].privHotMB, 1.0);
    // Fractions are untouched.
    EXPECT_DOUBLE_EQ(s.phases[0].trueFrac, p.phases[0].trueFrac);
}

TEST(Profile, InputScaleMultiplies)
{
    WorkloadProfile p;
    p.footprintMB = 10;
    p.trueSharedMB = 2;
    p.falseSharedMB = 3;
    const auto big = p.withInputScale(8.0);
    EXPECT_DOUBLE_EQ(big.footprintMB, 80.0);
    const auto small = p.withInputScale(1.0 / 32.0);
    EXPECT_DOUBLE_EQ(small.trueSharedMB, 0.0625);
}

TEST(Profile, ScaleRoundTripsApproximately)
{
    WorkloadProfile p;
    p.footprintMB = 97;
    const auto round = p.scaledData(4.0).withInputScale(4.0);
    EXPECT_NEAR(round.footprintMB, 97.0, 1e-9);
}

TEST(Profile, PhasesCycle)
{
    WorkloadProfile p;
    KernelPhase a;
    a.trueFrac = 0.1;
    KernelPhase b;
    b.trueFrac = 0.9;
    p.phases = {a, b};
    EXPECT_DOUBLE_EQ(p.phase(0).trueFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.phase(1).trueFrac, 0.9);
    EXPECT_DOUBLE_EQ(p.phase(2).trueFrac, 0.1);
    EXPECT_DOUBLE_EQ(p.phase(5).trueFrac, 0.9);
}

TEST(Profile, BadScaleArgumentsAreFatal)
{
    WorkloadProfile p;
    EXPECT_THROW(p.scaledData(0.0), PanicError);
    EXPECT_THROW(p.withInputScale(-1.0), PanicError);
}

} // namespace
} // namespace sac
