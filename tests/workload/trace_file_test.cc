/** @file Tests for trace recording and replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/config.hh"
#include "common/log.hh"
#include "workload/trace_file.hh"
#include "workload/tracegen.hh"

namespace sac {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::scaled(8);
    c.warpsPerCluster = 2;
    return c;
}

WorkloadProfile
profile()
{
    WorkloadProfile p;
    p.name = "trace-test";
    p.ctas = 16;
    p.footprintMB = 2;
    p.trueSharedMB = 0.5;
    p.falseSharedMB = 0.5;
    p.phases[0].writeFrac = 0.3;
    return p;
}

TEST(TraceFile, RecordReplayRoundTrip)
{
    auto c = cfg();
    SharingTraceGen gen(profile(), c, 1);
    std::ostringstream os;
    TraceRecorder rec(gen, os);
    std::vector<MemAccess> original;
    for (int i = 0; i < 200; ++i)
        original.push_back(rec.next(i % 4, i % 4, i % 2));
    EXPECT_EQ(rec.recorded(), 200u);

    std::istringstream is(os.str());
    TraceFileSource replay(is);
    EXPECT_EQ(replay.size(), 200u);
    for (int i = 0; i < 200; ++i) {
        const auto acc = replay.next(i % 4, i % 4, i % 2);
        EXPECT_EQ(acc.lineAddr, original[static_cast<std::size_t>(i)]
                                    .lineAddr);
        EXPECT_EQ(acc.type, original[static_cast<std::size_t>(i)].type);
        EXPECT_EQ(acc.gap, original[static_cast<std::size_t>(i)].gap);
    }
}

TEST(TraceFile, StreamsAreIndependentPerWarp)
{
    std::istringstream is(
        "#sactrace v1\n"
        "0 0 0 1000 0 R 5\n"
        "0 0 1 2000 0 W 7\n"
        "0 0 0 3000 0 R 5\n");
    TraceFileSource src(is);
    EXPECT_EQ(src.streams(), 2u);
    EXPECT_EQ(src.next(0, 0, 0).lineAddr, 0x1000u);
    EXPECT_EQ(src.next(0, 0, 1).lineAddr, 0x2000u);
    EXPECT_EQ(src.next(0, 0, 1).type, AccessType::Write); // wrapped
    EXPECT_EQ(src.next(0, 0, 0).lineAddr, 0x3000u);
    EXPECT_EQ(src.next(0, 0, 0).lineAddr, 0x1000u); // wrapped
}

TEST(TraceFile, CommentsAndKernelMarkersAreSkipped)
{
    std::istringstream is(
        "#sactrace v1\n"
        "# a comment\n"
        "#kernel 0\n"
        "1 2 3 abc0 0 R 9\n");
    TraceFileSource src(is);
    EXPECT_EQ(src.size(), 1u);
    const auto acc = src.next(1, 2, 3);
    EXPECT_EQ(acc.lineAddr, 0xabc0u);
    EXPECT_EQ(acc.gap, 9u);
}

TEST(TraceFile, MissingHeaderIsFatal)
{
    std::istringstream is("0 0 0 1000 0 R 5\n");
    EXPECT_THROW(TraceFileSource src(is), FatalError);
}

TEST(TraceFile, MalformedLineIsFatal)
{
    std::istringstream is("#sactrace v1\n0 0 zebra\n");
    EXPECT_THROW(TraceFileSource src(is), FatalError);
}

TEST(TraceFile, BadAccessTypeIsFatal)
{
    std::istringstream is("#sactrace v1\n0 0 0 1000 0 X 5\n");
    EXPECT_THROW(TraceFileSource src(is), FatalError);
}

TEST(TraceFile, EmptyTraceIsFatal)
{
    std::istringstream is("#sactrace v1\n");
    EXPECT_THROW(TraceFileSource src(is), FatalError);
}

TEST(TraceFile, UnknownStreamIsFatal)
{
    std::istringstream is("#sactrace v1\n0 0 0 1000 0 R 5\n");
    TraceFileSource src(is);
    EXPECT_THROW(src.next(3, 0, 0), FatalError);
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileSource::fromFile("/nonexistent/trace.txt"),
                 FatalError);
}

TEST(TraceFile, RejectionsAreRecoverableAndLocated)
{
    // Every rejection is a ValidationError (recoverable: the sweep
    // engine marks the job failed and carries on) whose context names
    // the source and line of the offending input.
    try {
        std::istringstream is("#sactrace v1\n0 0 zebra\n");
        TraceFileSource src(is, "bad.trace");
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_EQ(e.context(), "bad.trace:2");
        EXPECT_NE(std::string(e.what()).find("malformed trace line"),
                  std::string::npos);
    }

    try {
        std::istringstream is("0 0 0 1000 0 R 5\n");
        TraceFileSource src(is, "headerless.trace");
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_EQ(e.context(), "headerless.trace:1");
    }

    // Negative ids, out-of-range gaps and empty traces: same type.
    {
        std::istringstream is("#sactrace v1\n0 -1 0 1000 0 R 5\n");
        EXPECT_THROW(TraceFileSource src(is), ValidationError);
    }
    {
        std::istringstream is("#sactrace v1\n0 0 0 1000 0 R 99999\n");
        EXPECT_THROW(TraceFileSource src(is), ValidationError);
    }
    {
        std::istringstream is("#sactrace v1\n");
        EXPECT_THROW(TraceFileSource src(is), ValidationError);
    }

    // A truncated final line (no trailing fields) is rejected, not
    // silently half-read — the SIGKILL-mid-write artifact.
    {
        std::istringstream is("#sactrace v1\n0 0 0 1000 0 R 5\n0 0 0 20");
        EXPECT_THROW(TraceFileSource src(is), ValidationError);
    }
}

} // namespace
} // namespace sac
