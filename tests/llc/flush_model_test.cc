/**
 * @file
 * Hand-computed cases for the pure flush cost model: traffic
 * classification and the done = max(drain, memCtrl, icn) envelope
 * (llc/flush_model.hh).
 */

#include <gtest/gtest.h>

#include "llc/flush_model.hh"

namespace sac::flush {
namespace {

constexpr unsigned lineBytes = 128;

/** Closed-form stand-in: the memory system absorbs 2 bytes/cycle. */
class TwoBytesPerCycleMem : public MemDrainModel
{
  public:
    Cycle
    occupyBulk(ChipId chip, std::uint64_t bytes, Cycle now) override
    {
        lastChip = chip;
        ++calls;
        return now + static_cast<Cycle>(bytes / 2);
    }

    ChipId lastChip = -1;
    int calls = 0;
};

/** Stand-in that pins every writeback to a fixed completion cycle. */
class FixedDoneMem : public MemDrainModel
{
  public:
    explicit FixedDoneMem(Cycle done) : done_(done) {}

    Cycle
    occupyBulk(ChipId, std::uint64_t, Cycle) override
    {
        return done_;
    }

  private:
    Cycle done_;
};

TEST(FlushTraffic, HomeLinesAreWritebackOnly)
{
    FlushTraffic t(2);
    // A dirty line living on its home chip: writeback traffic only.
    t.addLine(/*owner=*/0, /*home=*/0, lineBytes);
    EXPECT_EQ(t.wbToHome[0], lineBytes);
    EXPECT_EQ(t.wbToHome[1], 0u);
    EXPECT_EQ(t.icnFromChip[0], 0u);
    EXPECT_EQ(t.icnFromChip[1], 0u);
}

TEST(FlushTraffic, ReplicasAlsoCrossTheInterChipNetwork)
{
    FlushTraffic t(2);
    // A dirty replica on chip 1 of data homed on chip 0: the bytes
    // reach chip 0's memory AND leave chip 1 over the inter-chip net.
    t.addLine(/*owner=*/1, /*home=*/0, lineBytes);
    EXPECT_EQ(t.wbToHome[0], lineBytes);
    EXPECT_EQ(t.wbToHome[1], 0u);
    EXPECT_EQ(t.icnFromChip[0], 0u);
    EXPECT_EQ(t.icnFromChip[1], lineBytes);
}

TEST(FlushModel, IcnDrainIsBytesOverBandwidthPlusLatency)
{
    FlushCosts costs;
    costs.interChipBw = 4.0;
    costs.interChipLatency = 80;
    // 1024 B / 4 B/cy = 256 cycles on the link, plus 80 latency.
    EXPECT_EQ(icnDrainDone(1024, costs, /*now=*/100), 100 + 256 + 80);
}

TEST(FlushModel, EmptyFlushCostsExactlyTheDrainWindow)
{
    FlushTraffic t(4);
    FlushCosts costs;
    costs.drainLatency = 200;
    TwoBytesPerCycleMem mem;
    EXPECT_EQ(flushDoneCycle(t, costs, /*now=*/1000, mem), 1200u);
    EXPECT_EQ(mem.calls, 0); // no bytes, no bandwidth reservation
}

TEST(FlushModel, MemoryWritebackDominatesLocalFlush)
{
    // Full flush of local-only dirty lines: 8 lines on chip 1, no
    // inter-chip traffic, memory at 2 B/cy.
    FlushTraffic t(2);
    for (int i = 0; i < 8; ++i)
        t.addLine(/*owner=*/1, /*home=*/1, lineBytes);

    FlushCosts costs;
    costs.drainLatency = 200;
    costs.interChipBw = 4.0;
    costs.interChipLatency = 80;
    TwoBytesPerCycleMem mem;
    // 8 * 128 B / 2 B/cy = 512 cycles > the 200-cycle drain window.
    EXPECT_EQ(flushDoneCycle(t, costs, /*now=*/1000, mem), 1512u);
    EXPECT_EQ(mem.calls, 1); // only chip 1 had writeback bytes
    EXPECT_EQ(mem.lastChip, 1);
}

TEST(FlushModel, ReplicaFlushAddsTheInterChipTerm)
{
    // Replica-only flush: 16 dirty replicas on chip 0 of chip-1 data.
    // The writebacks land on chip 1's memory; the same bytes leave
    // chip 0 over the inter-chip link.
    FlushTraffic t(2);
    for (int i = 0; i < 16; ++i)
        t.addLine(/*owner=*/0, /*home=*/1, lineBytes);

    FlushCosts costs;
    costs.drainLatency = 200;
    costs.interChipBw = 4.0;
    costs.interChipLatency = 80;
    // Memory completes instantly; the envelope is the icn term:
    // 16 * 128 / 4 + 80 = 512 + 80 = 592 past `now`.
    FixedDoneMem mem(/*done=*/0);
    EXPECT_EQ(flushDoneCycle(t, costs, /*now=*/1000, mem),
              1000 + 512 + 80);
}

TEST(FlushModel, EnvelopeIsTheMaxAcrossChipsAndTerms)
{
    // Mixed multi-chip flush on 3 chips:
    //   chip 0 holds 4 home lines        -> wbToHome[0] = 512
    //   chip 1 holds 8 replicas of chip 2 -> wbToHome[2] = 1024,
    //                                        icnFromChip[1] = 1024
    FlushTraffic t(3);
    for (int i = 0; i < 4; ++i)
        t.addLine(0, 0, lineBytes);
    for (int i = 0; i < 8; ++i)
        t.addLine(1, 2, lineBytes);

    FlushCosts costs;
    costs.drainLatency = 100;
    costs.interChipBw = 2.0;
    costs.interChipLatency = 40;
    TwoBytesPerCycleMem mem;
    // Terms past now=0: drain 100; mem chip0 512/2 = 256; mem chip2
    // 1024/2 = 512; icn chip1 1024/2 + 40 = 552. Envelope: 552.
    EXPECT_EQ(flushDoneCycle(t, costs, /*now=*/0, mem), 552u);
    EXPECT_EQ(mem.calls, 2); // chips 0 and 2 had writeback bytes
}

TEST(FlushModel, DoneNeverPrecedesTheDrainWindow)
{
    // Even when every byte clears instantly, the drain window floors
    // the completion cycle.
    FlushTraffic t(2);
    t.addLine(0, 0, lineBytes);
    FlushCosts costs;
    costs.drainLatency = 300;
    FixedDoneMem mem(/*done=*/5);
    EXPECT_EQ(flushDoneCycle(t, costs, /*now=*/50, mem), 350u);
}

} // namespace
} // namespace sac::flush
