/** @file Unit tests for the LLC organization policies. */

#include <gtest/gtest.h>

#include "llc/organization.hh"

namespace sac {
namespace {

TEST(Organization, FactoryBuildsEveryKind)
{
    for (const auto kind :
         {OrgKind::MemorySide, OrgKind::SmSide, OrgKind::StaticLlc,
          OrgKind::DynamicLlc, OrgKind::Sac}) {
        const auto org = Organization::make(kind);
        ASSERT_NE(org, nullptr);
        EXPECT_EQ(org->kind(), kind);
    }
}

TEST(Organization, CoherenceNeeds)
{
    EXPECT_FALSE(Organization::make(OrgKind::MemorySide)->cachesRemoteData());
    EXPECT_TRUE(Organization::make(OrgKind::SmSide)->cachesRemoteData());
    EXPECT_TRUE(Organization::make(OrgKind::StaticLlc)->cachesRemoteData());
    EXPECT_TRUE(Organization::make(OrgKind::DynamicLlc)->cachesRemoteData());
}

TEST(Organization, OnlySmSideHasSeparateNoc)
{
    EXPECT_TRUE(Organization::make(OrgKind::SmSide)->separateRemoteNoc());
    EXPECT_FALSE(Organization::make(OrgKind::Sac)->separateRemoteNoc());
    EXPECT_FALSE(
        Organization::make(OrgKind::MemorySide)->separateRemoteNoc());
}

TEST(Organization, WaySplits)
{
    EXPECT_EQ(Organization::make(OrgKind::MemorySide)->initialWaySplit(16),
              16);
    EXPECT_EQ(Organization::make(OrgKind::SmSide)->initialWaySplit(16), 16);
    EXPECT_EQ(Organization::make(OrgKind::StaticLlc)->initialWaySplit(16),
              8);
    EXPECT_EQ(Organization::make(OrgKind::DynamicLlc)->initialWaySplit(16),
              8);
}

TEST(Organization, OnlyDynamicRepartitions)
{
    EXPECT_TRUE(
        Organization::make(OrgKind::DynamicLlc)->dynamicPartitioning());
    EXPECT_FALSE(
        Organization::make(OrgKind::StaticLlc)->dynamicPartitioning());
}

TEST(Organization, SacSwitchesRoutingWithMode)
{
    SacOrg sac;
    EXPECT_EQ(sac.mode(), LlcMode::MemorySide);
    EXPECT_STREQ(sac.routing().name(), "memory-side");
    EXPECT_FALSE(sac.cachesRemoteData());
    sac.setMode(LlcMode::SmSide);
    EXPECT_STREQ(sac.routing().name(), "SM-side");
    EXPECT_TRUE(sac.cachesRemoteData());
    sac.setMode(LlcMode::MemorySide);
    EXPECT_STREQ(sac.routing().name(), "memory-side");
}

TEST(Organization, DisplayNames)
{
    EXPECT_STREQ(toString(OrgKind::MemorySide), "Memory-side");
    EXPECT_STREQ(toString(OrgKind::Sac), "SAC");
    EXPECT_STREQ(Organization::make(OrgKind::StaticLlc)->name(), "Static");
}

} // namespace
} // namespace sac
