/**
 * @file
 * Sectored-cache behaviour at the LLC slice (the Fig. 14 "sectored
 * cache" design point): sector misses fetch only their sector, tag
 * sharing works, and the CRD's per-sector bits line up.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/config.hh"
#include "llc/llc_slice.hh"

namespace sac {
namespace {

class SectorEnv : public SliceEnv
{
  public:
    bool memCanAccept(Addr) const override { return true; }
    void memPush(const Packet &pkt) override { toMem.push_back(pkt); }
    void sendToChip(ChipId dst, Packet pkt) override
    {
        pkt.nocDst = dst;
        toIcn.push_back(pkt);
    }
    void respondCluster(Packet pkt) override { toCluster.push_back(pkt); }
    void directoryFill(Addr, ChipId) override {}
    void directoryEvict(Addr, ChipId) override {}
    void coherentWrite(const Packet &, ChipId) override {}

    std::deque<Packet> toMem;
    std::deque<Packet> toIcn;
    std::deque<Packet> toCluster;
};

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::scaled(4);
    c.sectorsPerLine = 4;
    c.xbarLatency = 0;
    return c;
}

Packet
read(Addr line, unsigned sector)
{
    Packet p;
    p.kind = PacketKind::Request;
    p.type = AccessType::Read;
    p.lineAddr = line;
    p.sector = static_cast<std::uint8_t>(sector);
    p.srcChip = 0;
    p.srcCluster = 0;
    p.warp = 0;
    p.homeChip = 0;
    p.serveChip = 0;
    p.slice = 0;
    p.bytes = 32;
    return p;
}

void
ticks(LlcSlice &slice, SectorEnv &env, Cycle from, Cycle to)
{
    for (Cycle t = from; t < to; ++t)
        slice.tick(t, env);
}

TEST(SectoredSlice, SectorMissFetchesOnlyThatSector)
{
    SectorEnv env;
    LlcSlice slice(cfg(), 0, 0);
    slice.inQueue().push(read(0x1000, 1), 0);
    ticks(slice, env, 0, 3);
    ASSERT_EQ(env.toMem.size(), 1u);
    Packet fill = env.toMem[0];
    fill.kind = PacketKind::Response;
    fill.dataFromMem = true;
    fill.dataChip = 0;
    slice.pushFill(fill);
    ticks(slice, env, 3, 6);
    ASSERT_EQ(env.toCluster.size(), 1u);
    EXPECT_EQ(env.toCluster[0].bytes, 32u); // one 32-byte sector

    // Same sector now hits; a different sector of the same line is a
    // sector miss (tag shared, data absent).
    slice.inQueue().push(read(0x1000, 1), 6);
    slice.inQueue().push(read(0x1000, 3), 6);
    ticks(slice, env, 6, 9);
    EXPECT_EQ(slice.stats().hits, 1u);
    EXPECT_EQ(slice.stats().sectorMisses, 1u);
    ASSERT_EQ(env.toMem.size(), 2u);
    EXPECT_EQ(env.toMem[1].sector, 3);
}

TEST(SectoredSlice, SectorFillCompletesWithoutEviction)
{
    SectorEnv env;
    LlcSlice slice(cfg(), 0, 0);
    // Bring in two sectors of the same line back to back.
    for (unsigned s : {0u, 2u}) {
        slice.inQueue().push(read(0x2000, s), 0);
        ticks(slice, env, 0, 2);
        Packet fill = env.toMem.back();
        fill.kind = PacketKind::Response;
        fill.dataFromMem = true;
        fill.dataChip = 0;
        slice.pushFill(fill);
        ticks(slice, env, 2, 4);
    }
    EXPECT_EQ(slice.cache().validLines(), 1u); // one line, two sectors
    EXPECT_TRUE(slice.cache().probe(0x2000, 0));
    EXPECT_TRUE(slice.cache().probe(0x2000, 2));
    EXPECT_FALSE(slice.cache().probe(0x2000, 1));
}

TEST(SectoredSlice, DifferentSectorsHaveIndependentMshrs)
{
    SectorEnv env;
    LlcSlice slice(cfg(), 0, 0);
    slice.inQueue().push(read(0x3000, 0), 0);
    slice.inQueue().push(read(0x3000, 1), 0);
    ticks(slice, env, 0, 3);
    // Two distinct fetches, no merging across sectors.
    EXPECT_EQ(env.toMem.size(), 2u);
    EXPECT_EQ(slice.stats().mshrMerges, 0u);
}

} // namespace
} // namespace sac
