/** @file Unit tests for the Dynamic-LLC repartitioning controller. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "llc/dynamic_partition.hh"

namespace sac {
namespace {

DynamicLlcParams
params()
{
    DynamicLlcParams p;
    p.epoch = 1000;
    p.step = 1;
    p.minWays = 2;
    return p;
}

TEST(DynamicLlc, StartsBalanced)
{
    DynamicPartitionController ctrl(params(), 4, 16);
    for (ChipId c = 0; c < 4; ++c)
        EXPECT_EQ(ctrl.localWays(c), 8);
}

TEST(DynamicLlc, InterChipPressureGrowsRemotePartition)
{
    DynamicPartitionController ctrl(params(), 4, 16);
    EpochTraffic t;
    t.localMemBytes = 1000;
    t.interChipBytes = 10000;
    EXPECT_EQ(ctrl.update(0, t), 7); // local ways shrink
    EXPECT_EQ(ctrl.update(0, t), 6);
}

TEST(DynamicLlc, LocalMemoryPressureGrowsLocalPartition)
{
    DynamicPartitionController ctrl(params(), 4, 16);
    EpochTraffic t;
    t.localMemBytes = 10000;
    t.interChipBytes = 1000;
    EXPECT_EQ(ctrl.update(1, t), 9);
    EXPECT_EQ(ctrl.update(1, t), 10);
}

TEST(DynamicLlc, DeadBandHoldsBalancedTraffic)
{
    DynamicPartitionController ctrl(params(), 4, 16);
    EpochTraffic t;
    t.localMemBytes = 1000;
    t.interChipBytes = 1050; // within the 10% band
    EXPECT_EQ(ctrl.update(2, t), 8);
}

TEST(DynamicLlc, ClampsAtMinWays)
{
    DynamicPartitionController ctrl(params(), 4, 16);
    EpochTraffic t;
    t.interChipBytes = 1000000;
    for (int i = 0; i < 20; ++i)
        ctrl.update(0, t);
    EXPECT_EQ(ctrl.localWays(0), 2); // minWays
    t.interChipBytes = 0;
    t.localMemBytes = 1000000;
    for (int i = 0; i < 40; ++i)
        ctrl.update(0, t);
    EXPECT_EQ(ctrl.localWays(0), 14); // ways - minWays
}

TEST(DynamicLlc, ChipsAreIndependent)
{
    DynamicPartitionController ctrl(params(), 2, 16);
    EpochTraffic remote_heavy;
    remote_heavy.interChipBytes = 1000;
    ctrl.update(0, remote_heavy);
    EXPECT_EQ(ctrl.localWays(0), 7);
    EXPECT_EQ(ctrl.localWays(1), 8);
}

TEST(DynamicLlc, ResetRestoresBalance)
{
    DynamicPartitionController ctrl(params(), 2, 16);
    EpochTraffic t;
    t.interChipBytes = 1000;
    ctrl.update(0, t);
    ctrl.update(0, t);
    ctrl.reset();
    EXPECT_EQ(ctrl.localWays(0), 8);
}

TEST(DynamicLlc, TooFewWaysPanics)
{
    auto p = params();
    p.minWays = 9;
    EXPECT_THROW(DynamicPartitionController(p, 4, 16), PanicError);
}

} // namespace
} // namespace sac
