/**
 * @file
 * End-to-end behaviour of the partitioned organizations: the Static
 * LLC keeps its half/half split while the Dynamic LLC's split moves
 * with the traffic balance (Milic et al.'s heuristic), and the
 * organizations route data where the paper says they do.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workload/tracegen.hh"

namespace sac {
namespace {

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::scaled(8);
    c.warpsPerCluster = 16;
    c.dynamicLlc.epoch = 500; // repartition often in short tests
    return c;
}

/** Remote-heavy workload: mostly truly shared data. */
WorkloadProfile
remoteHeavy()
{
    WorkloadProfile p;
    p.name = "remote-heavy";
    p.ctas = 64;
    p.footprintMB = 4;
    p.trueSharedMB = 2;
    p.falseSharedMB = 1;
    p.phases[0].trueFrac = 0.7;
    p.phases[0].falseFrac = 0.2;
    p.phases[0].trueHotMB = 0.5;
    p.phases[0].falseHotMB = 0.5;
    p.phases[0].privHotMB = 0.25;
    p.phases[0].accessesPerWarp = 256;
    p.numKernels = 1;
    return p;
}

/** Local-heavy workload: almost everything private. */
WorkloadProfile
localHeavy()
{
    WorkloadProfile p = remoteHeavy();
    p.name = "local-heavy";
    p.phases[0].trueFrac = 0.05;
    p.phases[0].falseFrac = 0.0;
    return p;
}

RunResult
run(System &sys, const WorkloadProfile &p)
{
    std::vector<KernelDescriptor> ks;
    for (int k = 0; k < p.numKernels; ++k)
        ks.push_back({k, "k", p.phase(k).accessesPerWarp});
    return sys.run(ks);
}

TEST(OrgBehavior, StaticSplitNeverMoves)
{
    auto c = cfg();
    auto p = remoteHeavy();
    SharingTraceGen gen(p, c, 1);
    System sys(c, OrgKind::StaticLlc, gen);
    run(sys, p);
    for (ChipId chip = 0; chip < c.numChips; ++chip) {
        for (int s = 0; s < sys.chip(chip).numSlices(); ++s)
            EXPECT_EQ(sys.chip(chip).slice(s).cache().waySplit(),
                      c.llcWays / 2);
    }
}

TEST(OrgBehavior, DynamicSplitFollowsRemoteTraffic)
{
    auto c = cfg();
    auto p = remoteHeavy();
    SharingTraceGen gen(p, c, 1);
    System sys(c, OrgKind::DynamicLlc, gen);
    run(sys, p);
    // Remote-dominated traffic: the local partition shrinks below half
    // on at least one chip.
    int below = 0;
    for (ChipId chip = 0; chip < c.numChips; ++chip)
        below += sys.chip(chip).slice(0).cache().waySplit() <
                         c.llcWays / 2
                     ? 1
                     : 0;
    EXPECT_GT(below, 0);
}

TEST(OrgBehavior, DynamicSplitFollowsLocalTraffic)
{
    auto c = cfg();
    auto p = localHeavy();
    SharingTraceGen gen(p, c, 1);
    System sys(c, OrgKind::DynamicLlc, gen);
    run(sys, p);
    int above = 0;
    for (ChipId chip = 0; chip < c.numChips; ++chip)
        above += sys.chip(chip).slice(0).cache().waySplit() >
                         c.llcWays / 2
                     ? 1
                     : 0;
    EXPECT_GT(above, 0);
}

TEST(OrgBehavior, PartitionedOrgsCacheRemoteDataMemorySideDoesNot)
{
    auto c = cfg();
    auto p = remoteHeavy();
    // Measure via the in-run occupancy sampling: the software-coherence
    // kernel-end flush removes replicas before the run returns.
    const auto remote_fraction = [&](OrgKind kind) {
        SharingTraceGen gen(p, c, 1);
        System sys(c, kind, gen);
        return run(sys, p).llcRemoteFraction;
    };
    EXPECT_DOUBLE_EQ(remote_fraction(OrgKind::MemorySide), 0.0);
    EXPECT_GT(remote_fraction(OrgKind::StaticLlc), 0.02);
    EXPECT_GT(remote_fraction(OrgKind::SmSide), 0.02);
}

TEST(OrgBehavior, StaticBeatsNothingButWorksOnBothExtremes)
{
    // Sanity rather than ranking: the Static LLC completes and lands
    // between "broken" and "optimal" on both workload extremes.
    auto c = cfg();
    for (auto make : {remoteHeavy, localHeavy}) {
        auto p = make();
        SharingTraceGen g1(p, c, 1);
        System mem(c, OrgKind::MemorySide, g1);
        const auto rm = run(mem, p);
        SharingTraceGen g2(p, c, 1);
        System st(c, OrgKind::StaticLlc, g2);
        const auto rs = run(st, p);
        EXPECT_GT(rs.accesses, 0u);
        EXPECT_LT(static_cast<double>(rs.cycles),
                  3.0 * static_cast<double>(rm.cycles))
            << p.name;
    }
}

} // namespace
} // namespace sac
