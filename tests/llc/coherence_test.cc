/** @file Unit tests for the coherence directory and manager. */

#include <gtest/gtest.h>

#include "llc/coherence.hh"

namespace sac {
namespace {

TEST(Directory, TracksSharers)
{
    Directory dir(4);
    dir.addSharer(0x1000, 1);
    dir.addSharer(0x1000, 3);
    EXPECT_EQ(dir.sharers(0x1000), (1u << 1) | (1u << 3));
    EXPECT_EQ(dir.sharers(0x2000), 0u);
}

TEST(Directory, RemoveSharerAndGarbageCollect)
{
    Directory dir(4);
    dir.addSharer(0x1000, 1);
    dir.addSharer(0x1000, 2);
    EXPECT_EQ(dir.trackedLines(), 1u);
    dir.removeSharer(0x1000, 1);
    EXPECT_EQ(dir.sharers(0x1000), 1u << 2);
    dir.removeSharer(0x1000, 2);
    EXPECT_EQ(dir.trackedLines(), 0u);
    // Removing from an untracked line is a no-op.
    dir.removeSharer(0x9999, 0);
}

TEST(Directory, SharersExceptExcludesWriter)
{
    Directory dir(4);
    dir.addSharer(0x1000, 0);
    dir.addSharer(0x1000, 2);
    dir.addSharer(0x1000, 3);
    const auto others = dir.sharersExcept(0x1000, 2);
    ASSERT_EQ(others.size(), 2u);
    EXPECT_EQ(others[0], 0);
    EXPECT_EQ(others[1], 3);
}

TEST(Coherence, SoftwareNeverInvalidates)
{
    CoherenceManager mgr(CoherenceKind::Software, 4);
    mgr.directory().addSharer(0x1000, 1);
    EXPECT_TRUE(mgr.invalidationTargets(0x1000, 0).empty());
    EXPECT_EQ(mgr.invalidationsSent(), 0u);
}

TEST(Coherence, HardwareInvalidatesOtherSharers)
{
    CoherenceManager mgr(CoherenceKind::Hardware, 4);
    mgr.directory().addSharer(0x1000, 1);
    mgr.directory().addSharer(0x1000, 2);
    const auto targets = mgr.invalidationTargets(0x1000, 1);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], 2);
    EXPECT_EQ(mgr.invalidationsSent(), 1u);
    // The invalidated sharer is gone from the directory.
    EXPECT_EQ(mgr.directory().sharers(0x1000), 1u << 1);
    // Writing again invalidates nobody.
    EXPECT_TRUE(mgr.invalidationTargets(0x1000, 1).empty());
}

TEST(Coherence, WriterNotInvalidatedEvenIfSharer)
{
    CoherenceManager mgr(CoherenceKind::Hardware, 4);
    mgr.directory().addSharer(0x1000, 0);
    const auto targets = mgr.invalidationTargets(0x1000, 0);
    EXPECT_TRUE(targets.empty());
}

} // namespace
} // namespace sac
