/** @file Unit tests for the LLC slice (bypass, two-level, MSHRs). */

#include <gtest/gtest.h>

#include <deque>

#include "common/config.hh"
#include "llc/llc_slice.hh"

namespace sac {
namespace {

/** Records everything the slice asks its environment to do. */
class MockEnv : public SliceEnv
{
  public:
    bool memCanAccept(Addr) const override { return memAccepts; }
    void memPush(const Packet &pkt) override { toMem.push_back(pkt); }
    void sendToChip(ChipId dst, Packet pkt) override
    {
        pkt.nocDst = dst;
        toIcn.push_back(pkt);
    }
    void respondCluster(Packet pkt) override { toCluster.push_back(pkt); }
    void directoryFill(Addr a, ChipId c) override
    {
        fills.emplace_back(a, c);
    }
    void directoryEvict(Addr a, ChipId c) override
    {
        evicts.emplace_back(a, c);
    }
    void coherentWrite(const Packet &pkt, ChipId writer) override
    {
        writes.emplace_back(pkt.lineAddr, writer);
    }

    bool memAccepts = true;
    std::deque<Packet> toMem;
    std::deque<Packet> toIcn;
    std::deque<Packet> toCluster;
    std::vector<std::pair<Addr, ChipId>> fills;
    std::vector<std::pair<Addr, ChipId>> evicts;
    std::vector<std::pair<Addr, ChipId>> writes;
};

GpuConfig
cfg()
{
    GpuConfig c = GpuConfig::scaled(4);
    c.xbarLatency = 0;
    c.llcLatency = 0;
    c.sliceMshrs = 4;
    return c;
}

/** A local read request served by this slice (chip 0). */
Packet
localRead(Addr line, ChipId home = 0)
{
    Packet p;
    p.kind = PacketKind::Request;
    p.type = AccessType::Read;
    p.lineAddr = line;
    p.srcChip = 0;
    p.srcCluster = 0;
    p.warp = 0;
    p.homeChip = home;
    p.serveChip = 0;
    p.slice = 0;
    p.bytes = 32;
    return p;
}

void
runTicks(LlcSlice &slice, MockEnv &env, Cycle from, Cycle to)
{
    for (Cycle t = from; t < to; ++t)
        slice.tick(t, env);
}

TEST(LlcSlice, LocalMissFetchesFromLocalMemory)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    slice.inQueue().push(localRead(0x1000, 0), 0);
    runTicks(slice, env, 0, 3);
    ASSERT_EQ(env.toMem.size(), 1u);
    EXPECT_EQ(env.toMem[0].lineAddr, 0x1000u);
    EXPECT_EQ(slice.stats().misses, 1u);
}

TEST(LlcSlice, FillThenHitRespondsFromArray)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    slice.inQueue().push(localRead(0x1000, 0), 0);
    runTicks(slice, env, 0, 3);
    // Memory answers.
    Packet fill = env.toMem[0];
    fill.kind = PacketKind::Response;
    fill.dataFromMem = true;
    fill.dataChip = 0;
    slice.pushFill(fill);
    runTicks(slice, env, 3, 5);
    ASSERT_EQ(env.toCluster.size(), 1u);
    EXPECT_EQ(env.toCluster[0].origin, ResponseOrigin::LocalMem);
    // Second access hits.
    slice.inQueue().push(localRead(0x1000, 0), 5);
    runTicks(slice, env, 5, 8);
    ASSERT_EQ(env.toCluster.size(), 2u);
    EXPECT_EQ(env.toCluster[1].origin, ResponseOrigin::LocalLlc);
    EXPECT_EQ(slice.stats().hits, 1u);
}

TEST(LlcSlice, SmSideRemoteMissBypassesToHome)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    Packet p = localRead(0x2000, /*home=*/2); // SM-side: serve locally
    slice.inQueue().push(p, 0);
    runTicks(slice, env, 0, 3);
    ASSERT_EQ(env.toIcn.size(), 1u);
    EXPECT_TRUE(env.toIcn[0].bypassLlc);
    EXPECT_EQ(env.toIcn[0].nocDst, 2);
    EXPECT_TRUE(env.toMem.empty());
}

TEST(LlcSlice, PartitionedRemoteMissGoesToHomeLevel)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    Packet p = localRead(0x2000, 2);
    p.allocPartition = partitionRemote;
    p.homeLookup = true;
    p.homeAllocPartition = partitionLocal;
    slice.inQueue().push(p, 0);
    runTicks(slice, env, 0, 3);
    ASSERT_EQ(env.toIcn.size(), 1u);
    EXPECT_TRUE(env.toIcn[0].atHome);
    EXPECT_FALSE(env.toIcn[0].bypassLlc);
}

TEST(LlcSlice, HomeLevelRequestServedOnVcQueue)
{
    MockEnv env;
    LlcSlice slice(cfg(), 2, 0); // this is the home chip
    Packet p = localRead(0x2000, 2);
    p.srcChip = 0;
    p.serveChip = 0; // requester-side slice is on chip 0
    p.atHome = true;
    p.homeLookup = true;
    p.homeAllocPartition = partitionLocal;
    slice.vcQueue().push(p, 0);
    runTicks(slice, env, 0, 3);
    // Miss at home: fetches from home memory (same chip).
    ASSERT_EQ(env.toMem.size(), 1u);
    // Memory fill completes the home level and forwards to chip 0.
    Packet fill = env.toMem[0];
    fill.kind = PacketKind::Response;
    fill.dataFromMem = true;
    fill.dataChip = 2;
    slice.pushFill(fill);
    runTicks(slice, env, 3, 6);
    ASSERT_EQ(env.toIcn.size(), 1u);
    EXPECT_TRUE(env.toIcn[0].homeFilled);
    EXPECT_EQ(env.toIcn[0].nocDst, 0);
    // The home slice kept a copy (memory-side behaviour at home).
    EXPECT_TRUE(slice.cache().probe(0x2000, 0));
}

TEST(LlcSlice, BypassPacketsSkipTheArray)
{
    MockEnv env;
    LlcSlice slice(cfg(), 2, 0);
    Packet p = localRead(0x3000, 2);
    p.srcChip = 0;
    p.serveChip = 0;
    p.bypassLlc = true;
    slice.vcQueue().push(p, 0);
    runTicks(slice, env, 0, 3);
    ASSERT_EQ(env.toMem.size(), 1u);
    EXPECT_EQ(slice.stats().bypasses, 1u);
    EXPECT_EQ(slice.stats().requests, 0u); // no lookup happened
    EXPECT_FALSE(slice.cache().probe(0x3000, 0));
}

TEST(LlcSlice, MshrCoalescesAndRespondsToAll)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    for (int w = 0; w < 3; ++w) {
        Packet p = localRead(0x4000, 0);
        p.warp = w;
        slice.inQueue().push(p, 0);
    }
    runTicks(slice, env, 0, 3);
    ASSERT_EQ(env.toMem.size(), 1u); // one fetch
    EXPECT_EQ(slice.stats().mshrMerges, 2u);
    Packet fill = env.toMem[0];
    fill.kind = PacketKind::Response;
    fill.dataFromMem = true;
    fill.dataChip = 0;
    slice.pushFill(fill);
    runTicks(slice, env, 3, 6);
    EXPECT_EQ(env.toCluster.size(), 3u);
}

TEST(LlcSlice, MshrFullStallsHeadOfLine)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0); // 4 MSHRs
    for (int i = 0; i < 6; ++i)
        slice.inQueue().push(localRead(0x1000 + 0x80ull * i, 0), 0);
    runTicks(slice, env, 0, 5);
    EXPECT_EQ(env.toMem.size(), 4u);
    EXPECT_GT(slice.stats().stallsMshrFull, 0u);
    EXPECT_EQ(slice.inQueued(), 2u);
}

TEST(LlcSlice, MemBackpressureQueuesMisses)
{
    MockEnv env;
    env.memAccepts = false;
    LlcSlice slice(cfg(), 0, 0);
    slice.inQueue().push(localRead(0x5000, 0), 0);
    runTicks(slice, env, 0, 3);
    EXPECT_TRUE(env.toMem.empty());
    EXPECT_EQ(slice.missQueued(), 1u);
    env.memAccepts = true;
    runTicks(slice, env, 3, 5);
    EXPECT_EQ(env.toMem.size(), 1u);
}

TEST(LlcSlice, WriteHitMarksDirtyAndAcks)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    slice.cache().insert(0x6000, 0, 0, false, partitionLocal);
    Packet p = localRead(0x6000, 0);
    p.type = AccessType::Write;
    slice.inQueue().push(p, 0);
    runTicks(slice, env, 0, 3);
    ASSERT_EQ(env.toCluster.size(), 1u);
    EXPECT_EQ(env.toCluster[0].bytes, 8u); // small ack
    EXPECT_EQ(slice.cache().dirtyLines(), 1u);
    ASSERT_EQ(env.writes.size(), 1u);
    EXPECT_EQ(env.writes[0].first, 0x6000u);
}

TEST(LlcSlice, DirtyRemoteEvictionWritesBackAcrossChips)
{
    GpuConfig c = cfg();
    // Tiny cache: 2 sets x 2 ways per slice to force evictions fast.
    c.llcBytesPerChip = 2048;
    c.llcWays = 2;
    c.slicesPerChip = 4;
    MockEnv env;
    LlcSlice slice(c, 0, 0);
    // Insert dirty remote lines until something dirty is evicted.
    bool saw_remote_writeback = false;
    for (int i = 0; i < 64 && !saw_remote_writeback; ++i) {
        Packet fillp = localRead(0x8000 + 0x80ull * i, /*home=*/3);
        fillp.kind = PacketKind::Response;
        fillp.type = AccessType::Write;
        fillp.dataFromMem = true;
        fillp.dataChip = 3;
        // Register as a miss first so the fill has a target.
        Packet req = localRead(0x8000 + 0x80ull * i, 3);
        req.type = AccessType::Write;
        slice.inQueue().push(req, 0);
        runTicks(slice, env, 0, 2);
        slice.pushFill(fillp);
        runTicks(slice, env, 2, 4);
        for (const auto &pkt : env.toIcn) {
            if (pkt.kind == PacketKind::Writeback) {
                saw_remote_writeback = true;
                EXPECT_TRUE(pkt.bypassLlc);
                EXPECT_EQ(pkt.nocDst, 3);
            }
        }
    }
    EXPECT_TRUE(saw_remote_writeback);
}

TEST(LlcSlice, ReplicaFillRegistersInDirectory)
{
    MockEnv env;
    LlcSlice slice(cfg(), 0, 0);
    Packet req = localRead(0x9000, /*home=*/1); // SM-side remote
    slice.inQueue().push(req, 0);
    runTicks(slice, env, 0, 2);
    Packet fill = env.toIcn[0]; // the bypass fetch
    fill.kind = PacketKind::Response;
    fill.bypassLlc = false;
    fill.dataFromMem = true;
    fill.dataChip = 1;
    slice.pushFill(fill);
    runTicks(slice, env, 2, 4);
    ASSERT_EQ(env.fills.size(), 1u);
    EXPECT_EQ(env.fills[0].first, 0x9000u);
    EXPECT_EQ(env.fills[0].second, 0); // replica lives on chip 0
    // Response origin is the remote memory partition.
    ASSERT_EQ(env.toCluster.size(), 1u);
    EXPECT_EQ(env.toCluster[0].origin, ResponseOrigin::RemoteMem);
}

} // namespace
} // namespace sac
