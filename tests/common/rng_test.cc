/** @file Unit and property tests for the deterministic RNG and Zipf. */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace sac {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42, 7);
    Rng b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSaltDifferentStream)
{
    Rng a(42, 1);
    Rng b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(1);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(3);
    int buckets[10] = {};
    for (int i = 0; i < 100000; ++i)
        ++buckets[rng.nextBounded(10)];
    for (const int count : buckets) {
        EXPECT_GT(count, 9000);
        EXPECT_LT(count, 11000);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Zipf, AlphaZeroIsUniform)
{
    ZipfSampler z(100, 0.0);
    Rng rng(11);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[z.sample(rng)];
    for (const int c : counts) {
        EXPECT_GT(c, 700);
        EXPECT_LT(c, 1300);
    }
}

TEST(Zipf, SkewConcentratesOnHead)
{
    ZipfSampler z(10000, 1.2);
    Rng rng(13);
    std::uint64_t head = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        head += z.sample(rng) < 100 ? 1 : 0;
    // With alpha=1.2, the top-1% ranks absorb well over a third of
    // the draws.
    EXPECT_GT(head, static_cast<std::uint64_t>(n) * 35 / 100);
}

TEST(Zipf, SamplesAlwaysInRange)
{
    for (double alpha : {0.0, 0.5, 1.0, 1.5}) {
        ZipfSampler z(37, alpha);
        Rng rng(17);
        for (int i = 0; i < 5000; ++i)
            EXPECT_LT(z.sample(rng), 37u);
    }
}

TEST(Zipf, LargePopulationWorks)
{
    ZipfSampler z(10'000'000, 0.9);
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(z.sample(rng), 10'000'000u);
}

} // namespace
} // namespace sac
