/** @file Unit tests for GpuConfig and its scaling rules. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"

namespace sac {
namespace {

TEST(Config, DefaultsValidate)
{
    GpuConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, PaperBaselineMatchesTable3)
{
    const auto cfg = GpuConfig::paperBaseline();
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.numChips, 4);
    EXPECT_EQ(cfg.clustersPerChip, 32);       // 64 SMs, 2 per port
    EXPECT_EQ(cfg.slicesPerChip, 16);         // 64 slices total
    EXPECT_EQ(cfg.totalChannels(), 32);       // 32 DRAM channels
    EXPECT_EQ(cfg.llcBytesPerChip, 4ull << 20);
    EXPECT_EQ(cfg.llcBytesTotal(), 16ull << 20);
    EXPECT_EQ(cfg.lineBytes, 128u);
    EXPECT_EQ(cfg.pageBytes, 4096u);
    // 16 TB/s LLC over 64 slices, 1.75 TB/s DRAM, 4 TB/s NoC per chip.
    EXPECT_NEAR(cfg.sliceBw * cfg.totalSlices(), 16384.0, 1.0);
    EXPECT_NEAR(cfg.dramChannelBw * cfg.totalChannels(), 1792.0, 64.0);
    EXPECT_NEAR(cfg.intraBwPerChip(), 4096.0, 1.0);
    // 768 GB/s inter-chip ring = 384 per chip egress+ingress pair.
    EXPECT_NEAR(cfg.interChipBw * cfg.numChips / 4, 384.0, 1.0);
}

TEST(Config, ScalingPreservesBandwidthRatios)
{
    const auto full = GpuConfig::paperBaseline();
    for (int d : {2, 4, 8}) {
        const auto cfg = GpuConfig::scaled(d);
        EXPECT_NO_THROW(cfg.validate());
        EXPECT_EQ(cfg.clustersPerChip, full.clustersPerChip / d);
        EXPECT_EQ(cfg.slicesPerChip, full.slicesPerChip / d);
        EXPECT_EQ(cfg.llcBytesPerChip, full.llcBytesPerChip / d);
        const double full_ratio =
            full.intraBwPerChip() / (full.interChipBw);
        const double scaled_ratio =
            cfg.intraBwPerChip() / (cfg.interChipBw);
        EXPECT_NEAR(scaled_ratio, full_ratio, 1e-9);
        const double full_dram_ratio =
            full.dramBwPerChip() / full.interChipBw;
        const double scaled_dram_ratio =
            cfg.dramBwPerChip() / cfg.interChipBw;
        EXPECT_NEAR(scaled_dram_ratio, full_dram_ratio, 1e-9);
    }
}

TEST(Config, ScaleOneIsPaperBaselinePlusWindow)
{
    const auto cfg = GpuConfig::scaled(1);
    const auto full = GpuConfig::paperBaseline();
    EXPECT_EQ(cfg.clustersPerChip, full.clustersPerChip);
    EXPECT_EQ(cfg.sac.profileWindow, full.sac.profileWindow);
}

TEST(Config, ValidationCatchesBadGeometry)
{
    GpuConfig cfg;
    cfg.lineBytes = 100; // not a power of two
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = GpuConfig{};
    cfg.pageBytes = 64; // smaller than a line
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = GpuConfig{};
    cfg.numChips = 0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = GpuConfig{};
    cfg.sectorsPerLine = 3;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = GpuConfig{};
    cfg.interChipBw = 0.0;
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = GpuConfig{};
    cfg.dynamicLlc.minWays = 9; // 2*9 > 16 ways
    EXPECT_THROW(cfg.validate(), FatalError);

    cfg = GpuConfig{};
    cfg.occupancyInterval = 0; // a zero interval would sample forever
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, OccupancyIntervalIsConfigurable)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.occupancyInterval, 2048u); // former hard-coded value

    cfg.occupancyInterval = 512;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, BadScaleDivisorIsFatal)
{
    EXPECT_THROW(GpuConfig::scaled(0), FatalError);
    EXPECT_THROW(GpuConfig::scaled(3), FatalError); // does not divide 32/16
}

TEST(Config, ValidationErrorsNameTheOffendingField)
{
    // validate() throws recoverable ValidationErrors whose context is
    // the field that failed — a sweep diagnostic says exactly which
    // knob to fix.
    const auto context_of = [](GpuConfig cfg) {
        try {
            cfg.validate();
        } catch (const ValidationError &e) {
            return e.context();
        }
        return std::string("(validated)");
    };

    GpuConfig cfg;
    cfg.lineBytes = 100;
    EXPECT_EQ(context_of(cfg), "GpuConfig.lineBytes");

    cfg = GpuConfig{};
    cfg.numChips = 0;
    EXPECT_EQ(context_of(cfg), "GpuConfig.numChips");

    cfg = GpuConfig{};
    cfg.sectorsPerLine = 3;
    EXPECT_EQ(context_of(cfg), "GpuConfig.sectorsPerLine");

    cfg = GpuConfig{};
    cfg.dynamicLlc.minWays = 9;
    EXPECT_EQ(context_of(cfg), "GpuConfig.dynamicLlc.minWays");

    cfg = GpuConfig{};
    cfg.occupancyInterval = 0;
    EXPECT_EQ(context_of(cfg), "GpuConfig.occupancyInterval");

    try {
        GpuConfig::scaled(3);
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_EQ(e.context(), "GpuConfig.scaled");
    }
}

TEST(Config, DerivedQuantities)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.totalClusters(), cfg.numChips * cfg.clustersPerChip);
    EXPECT_EQ(cfg.linesPerPage(), cfg.pageBytes / cfg.lineBytes);
    EXPECT_EQ(cfg.llcBytesPerSlice() * static_cast<std::uint64_t>(
                  cfg.slicesPerChip),
              cfg.llcBytesPerChip);
}

TEST(Config, SummaryMentionsKeyNumbers)
{
    const auto text = GpuConfig::scaled(4).summary();
    EXPECT_NE(text.find("4 chips"), std::string::npos);
    EXPECT_NE(text.find("coherence software"), std::string::npos);
}

} // namespace
} // namespace sac
