/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hh"
#include "common/stats.hh"

namespace sac::stats {
namespace {

TEST(Stats, CounterCountsAndResets)
{
    Counter c("hits", "cache hits");
    ++c;
    c += 41;
    EXPECT_EQ(c.count(), 42u);
    EXPECT_DOUBLE_EQ(c.value(), 42.0);
    c.reset();
    EXPECT_EQ(c.count(), 0u);
}

TEST(Stats, ScalarAssignAndAccumulate)
{
    Scalar s("ratio", "some ratio");
    s = 1.5;
    s += 0.5;
    EXPECT_DOUBLE_EQ(s.value(), 2.0);
}

TEST(Stats, AverageTracksMean)
{
    Average a("lat", "latency");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.value(), 20.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Stats, DistributionBucketsAndOverflow)
{
    Distribution d("d", "dist", 10.0, 5);
    d.sample(0.5);  // bucket 0
    d.sample(3.0);  // bucket 1
    d.sample(9.9);  // bucket 4
    d.sample(50.0); // overflow -> last bucket
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.buckets()[4], 2u);
    EXPECT_EQ(d.samples(), 4u);
}

TEST(Stats, GroupFindByDottedPath)
{
    StatGroup root("sys");
    StatGroup child("chip0");
    Counter c("hits", "hits");
    ++c;
    child.add(c);
    root.addChild(child);
    ASSERT_NE(root.find("chip0.hits"), nullptr);
    EXPECT_DOUBLE_EQ(root.get("chip0.hits"), 1.0);
    EXPECT_EQ(root.find("chip1.hits"), nullptr);
    EXPECT_EQ(root.find("chip0.misses"), nullptr);
}

TEST(Stats, GroupRejectsDuplicates)
{
    StatGroup g("g");
    Counter a("x", "first");
    Counter b("x", "second");
    g.add(a);
    EXPECT_THROW(g.add(b), PanicError);
}

TEST(Stats, GroupResetAllRecurses)
{
    StatGroup root("sys");
    StatGroup child("c");
    Counter a("a", "");
    Counter b("b", "");
    ++a;
    ++b;
    root.add(a);
    child.add(b);
    root.addChild(child);
    root.resetAll();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(b.count(), 0u);
}

TEST(Stats, DumpContainsNamesValuesAndDescriptions)
{
    StatGroup g("core");
    Counter c("instructions", "retired instructions");
    c += 7;
    g.add(c);
    std::ostringstream os;
    g.dump(os);
    const auto text = os.str();
    EXPECT_NE(text.find("core.instructions"), std::string::npos);
    EXPECT_NE(text.find("7"), std::string::npos);
    EXPECT_NE(text.find("retired instructions"), std::string::npos);
}

TEST(Stats, ForEachVisitsQualifiedPathsInDumpOrder)
{
    StatGroup root("sys");
    StatGroup chip("chip0");
    Counter b("beta", "");
    Counter a("alpha", "");
    Counter h("hits", "");
    root.add(b);
    root.add(a); // registered after b; visited first (name order)
    chip.add(h);
    root.addChild(chip);
    ++a;
    h += 3;

    std::vector<std::pair<std::string, double>> seen;
    root.forEach([&](const std::string &path, const Stat &stat) {
        seen.emplace_back(path, stat.value());
    });

    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].first, "sys.alpha");
    EXPECT_EQ(seen[0].second, 1.0);
    EXPECT_EQ(seen[1].first, "sys.beta");
    EXPECT_EQ(seen[2].first, "sys.chip0.hits");
    EXPECT_EQ(seen[2].second, 3.0);

    // dump() is implemented on forEach(); same entries, same order.
    std::ostringstream os;
    root.dump(os);
    const auto text = os.str();
    EXPECT_LT(text.find("sys.alpha"), text.find("sys.beta"));
    EXPECT_LT(text.find("sys.beta"), text.find("sys.chip0.hits"));
}

TEST(Stats, GetUnknownPanics)
{
    StatGroup g("g");
    EXPECT_THROW(g.get("nope"), PanicError);
}

} // namespace
} // namespace sac::stats
