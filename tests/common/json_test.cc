/**
 * @file
 * Hardening tests for the JSON parser: malformed input must throw a
 * located ValidationError — never crash, hang, or invoke UB. The
 * ASan/UBSan CI job runs this same corpus with sanitizers enabled.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"

namespace sac {
namespace {

/** Silences the [invalid] console echo while each test runs. */
class JsonHardening : public ::testing::Test
{
  protected:
    void SetUp() override { log_detail::setQuiet(true); }
    void TearDown() override { log_detail::setQuiet(false); }
};

TEST_F(JsonHardening, MalformedCorpusThrowsInsteadOfCrashing)
{
    const std::vector<std::string> corpus = {
        "",
        " ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{\"a\" 1}",
        "{a:1}",
        "[1,]",
        "[1 2]",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"bad unicode \\u12g4\"",
        "\"truncated unicode \\u12",
        "01",
        "+1",
        "1.",
        "1e",
        "1e+",
        ".5",
        "-",
        "nul",
        "tru",
        "falsey",
        "nullx",
        "truex",
        "{\"a\":1}garbage",
        "[1]2",
        "{\"a\":\"\x01\"}", // raw control character in a string
        std::string("[1,\0,2]", 7), // embedded NUL
        "{\"\\u0000\":1}x",
    };
    for (const auto &text : corpus) {
        EXPECT_THROW(json::parse(text), ValidationError)
            << "input: " << text;
    }
}

TEST_F(JsonHardening, DeepNestingFailsCleanly)
{
    // One level under the cap parses; past the cap is rejected with a
    // clear message instead of a stack overflow.
    const auto nested = [](int depth) {
        return std::string(static_cast<std::size_t>(depth), '[') +
               std::string(static_cast<std::size_t>(depth), ']');
    };
    EXPECT_NO_THROW(json::parse(nested(json::maxDepth)));
    EXPECT_THROW(json::parse(nested(json::maxDepth + 1)),
                 ValidationError);
    EXPECT_THROW(json::parse(std::string(100000, '[')), ValidationError);

    // Same cap for objects.
    std::string obj;
    for (int i = 0; i < json::maxDepth + 1; ++i)
        obj += "{\"k\":";
    obj += "1";
    for (int i = 0; i < json::maxDepth + 1; ++i)
        obj += "}";
    EXPECT_THROW(json::parse(obj), ValidationError);

    try {
        json::parse(nested(json::maxDepth + 1));
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_NE(std::string(e.what()).find("nesting deeper"),
                  std::string::npos);
    }
}

TEST_F(JsonHardening, ErrorsCarryLineAndColumn)
{
    try {
        json::parse("{\"a\": 1,\n \"b\": oops}");
        FAIL() << "expected ValidationError";
    } catch (const ValidationError &e) {
        EXPECT_EQ(e.context(), "line 2, column 7");
        EXPECT_NE(std::string(e.what()).find("line 2, column 7"),
                  std::string::npos);
    }
}

TEST_F(JsonHardening, NumberConversionsRejectMismatches)
{
    EXPECT_EQ(json::parse("42").asU64(), 42u);
    EXPECT_THROW(json::parse("-42").asU64(), FatalError);
    EXPECT_THROW(json::parse("\"42\"").asU64(), FatalError);
    EXPECT_EQ(json::parse("-42").asDouble(), -42.0);
    EXPECT_THROW(json::parse("{}").at("missing"), FatalError);
}

TEST_F(JsonHardening, DoubleFormattingIsShortestRoundTrip)
{
    // Human-friendly values print exactly as written...
    EXPECT_EQ(json::number(2.3), "2.3");
    EXPECT_EQ(json::number(0.1), "0.1");
    EXPECT_EQ(json::number(1.5), "1.5");
    EXPECT_EQ(json::number(-1500.0), "-1500");
    EXPECT_EQ(json::number(0.0), "0");
    // ...and every double, friendly or not, must survive a
    // format -> parse round trip bit-exactly.
    const std::vector<double> hard = {
        2.2999999999999998, 1.0 / 3.0,      0.30000000000000004,
        1e-300,             1.7976931348623157e308,
        5.0000000000000009, 4.9406564584124654e-324,
    };
    for (const double v : hard) {
        const std::string text = json::number(v);
        EXPECT_EQ(json::parse(text).asDouble(), v) << text;
    }
}

TEST_F(JsonHardening, GoodDocumentsStillParse)
{
    const auto v = json::parse(
        "{\"s\":\"a\\u0041\\n\",\"n\":-1.5e3,\"b\":true,"
        "\"z\":null,\"arr\":[1,2,3],\"o\":{\"k\":\"v\"}}");
    EXPECT_EQ(v.at("s").asString(), "aA\n");
    EXPECT_EQ(v.at("n").asDouble(), -1500.0);
    EXPECT_TRUE(v.at("b").boolean);
    EXPECT_EQ(v.at("arr").array.size(), 3u);
    EXPECT_EQ(v.at("o").at("k").asString(), "v");
}

} // namespace
} // namespace sac
