/** @file Unit tests for the logging/error facility. */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace sac {
namespace {

TEST(Log, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
}

TEST(Log, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", "x"), FatalError);
}

TEST(Log, MessagesConcatenateArguments)
{
    try {
        panic("a", 1, "b", 2.5);
        FAIL() << "panic returned";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "a1b2.5");
    }
}

TEST(Log, FatalIsNotAPanic)
{
    try {
        fatal("user error");
        FAIL() << "fatal returned";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "user error");
    } catch (...) {
        FAIL() << "wrong exception type";
    }
}

TEST(Log, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(SAC_ASSERT(1 + 1 == 2, "math works"));
}

TEST(Log, AssertPanicsOnFalse)
{
    EXPECT_THROW(SAC_ASSERT(false, "value was ", 7), PanicError);
}

TEST(Log, AssertMessageNamesCondition)
{
    try {
        SAC_ASSERT(2 < 1, "ordering");
        FAIL() << "assert passed";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("2 < 1"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("ordering"), std::string::npos);
    }
}

TEST(Log, QuietSuppressesNothingFatal)
{
    log_detail::setQuiet(true);
    EXPECT_NO_THROW(warn("hidden"));
    EXPECT_NO_THROW(inform("hidden"));
    EXPECT_THROW(panic("still thrown"), PanicError);
    log_detail::setQuiet(false);
}

} // namespace
} // namespace sac
