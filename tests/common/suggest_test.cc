/**
 * @file
 * Did-you-mean suggestions and the recoverable name-lookup errors
 * built on them: a typo in a benchmark or organization name must
 * surface as a ValidationError naming the nearest valid choice, not
 * abort the process.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/log.hh"
#include "common/suggest.hh"
#include "llc/organization.hh"
#include "workload/suite.hh"

namespace sac {
namespace {

TEST(Suggest, EditDistanceCountsAllFourOperations)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", "abd"), 1u);  // substitute
    EXPECT_EQ(editDistance("abc", "ab"), 1u);   // delete
    EXPECT_EQ(editDistance("abc", "abcd"), 1u); // insert
    EXPECT_EQ(editDistance("abc", "acb"), 1u);  // transpose
    EXPECT_EQ(editDistance("", "xyz"), 3u);
}

TEST(Suggest, ClosestMatchIsCaseInsensitiveAndBounded)
{
    const std::vector<std::string> names = {"mem", "sm", "static",
                                            "dynamic", "sac"};
    EXPECT_EQ(closestMatch("Mem", names), "mem");
    EXPECT_EQ(closestMatch("dinamic", names), "dynamic");
    EXPECT_EQ(closestMatch("scc", names), "sac");
    // Nothing plausibly close: no suggestion at all.
    EXPECT_EQ(closestMatch("quartz", names), "");
    // Deterministic tie-break toward the earlier candidate.
    EXPECT_EQ(closestMatch("sn", {"sm", "sp"}), "sm");
}

TEST(Suggest, DidYouMeanFormatsSuffixOrNothing)
{
    EXPECT_EQ(didYouMean("CDF", {"CFD", "BFS"}),
              " (did you mean 'CFD'?)");
    EXPECT_EQ(didYouMean("zzzzzz", {"CFD", "BFS"}), "");
}

TEST(Suggest, FindBenchmarkRecoversWithSuggestion)
{
    try {
        findBenchmark("CDF");
        FAIL() << "typo accepted";
    } catch (const ValidationError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown benchmark"), std::string::npos);
        EXPECT_NE(msg.find("CFD"), std::string::npos);
    }
}

TEST(Suggest, OrgKindFromNameRecoversWithSuggestion)
{
    try {
        orgKindFromName("statc");
        FAIL() << "typo accepted";
    } catch (const ValidationError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown organization"), std::string::npos);
        EXPECT_NE(msg.find("static"), std::string::npos);
    }
}

} // namespace
} // namespace sac
