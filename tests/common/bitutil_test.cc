/** @file Unit tests for bit-manipulation helpers. */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hh"

namespace sac {
namespace {

TEST(BitUtil, PowerOfTwoDetection)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(128), 7u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(BitUtil, Mix64IsDeterministicAndInjectiveOnSmallRange)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const auto h = mix64(i);
        EXPECT_EQ(h, mix64(i));
        seen.insert(h);
    }
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(BitUtil, Mix64SpreadsLowBits)
{
    // Consecutive inputs should land in different mod-16 buckets with
    // a roughly uniform distribution.
    int buckets[16] = {};
    for (std::uint64_t i = 0; i < 16000; ++i)
        ++buckets[mix64(i) % 16];
    for (const int count : buckets) {
        EXPECT_GT(count, 800);
        EXPECT_LT(count, 1200);
    }
}

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(1023, 512), 2u);
}

} // namespace
} // namespace sac
