/** @file Unit tests for first-touch page placement. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/page_table.hh"

namespace sac {
namespace {

TEST(PageTable, FirstToucherWins)
{
    PageTable pt(4096, 4);
    EXPECT_EQ(pt.touch(0x1000, 2), 2);
    // Later touches by other chips do not move the page.
    EXPECT_EQ(pt.touch(0x1000, 0), 2);
    EXPECT_EQ(pt.touch(0x1040, 3), 2); // same page, different line
    EXPECT_EQ(pt.homeOf(0x1fc0), 2);
}

TEST(PageTable, DistinctPagesIndependent)
{
    PageTable pt(4096, 4);
    pt.touch(0x0000, 0);
    pt.touch(0x1000, 1);
    pt.touch(0x2000, 2);
    EXPECT_EQ(pt.homeOf(0x0000), 0);
    EXPECT_EQ(pt.homeOf(0x1000), 1);
    EXPECT_EQ(pt.homeOf(0x2000), 2);
    EXPECT_EQ(pt.totalPages(), 3u);
}

TEST(PageTable, UntouchedPageHasNoHome)
{
    PageTable pt(4096, 4);
    EXPECT_EQ(pt.homeOf(0x5000), invalidChip);
}

TEST(PageTable, PerChipCounters)
{
    PageTable pt(4096, 2);
    pt.touch(0x0000, 0);
    pt.touch(0x1000, 0);
    pt.touch(0x2000, 1);
    pt.touch(0x2000, 0); // already placed, no recount
    EXPECT_EQ(pt.pagesPerChip()[0], 2u);
    EXPECT_EQ(pt.pagesPerChip()[1], 1u);
}

TEST(PageTable, ClearForgetsPlacements)
{
    PageTable pt(4096, 2);
    pt.touch(0x0000, 1);
    pt.clear();
    EXPECT_EQ(pt.homeOf(0x0000), invalidChip);
    EXPECT_EQ(pt.totalPages(), 0u);
    EXPECT_EQ(pt.pagesPerChip()[1], 0u);
    // And re-placement works after clearing.
    EXPECT_EQ(pt.touch(0x0000, 0), 0);
}

TEST(PageTable, TouchFromUnknownChipPanics)
{
    PageTable pt(4096, 2);
    EXPECT_THROW(pt.touch(0x0, 5), PanicError);
    EXPECT_THROW(pt.touch(0x0, -1), PanicError);
}

TEST(PageTable, LargePageSizeGroupsLines)
{
    PageTable pt(65536, 4); // 64 KB pages (Fig. 14 page-size axis)
    pt.touch(0x0000, 3);
    EXPECT_EQ(pt.homeOf(0xFFC0), 3);   // still page 0
    EXPECT_EQ(pt.homeOf(0x10000), invalidChip);
}

} // namespace
} // namespace sac
