/** @file Unit tests for the PAE-style randomized address mapping. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/address_map.hh"

namespace sac {
namespace {

TEST(AddressMap, DeterministicPerAddress)
{
    AddressMap map(4, 2, 128);
    for (Addr a = 0; a < 100 * 128; a += 128) {
        EXPECT_EQ(map.sliceIndex(a), map.sliceIndex(a));
        EXPECT_EQ(map.channelIndex(a), map.channelIndex(a));
    }
}

TEST(AddressMap, SliceIndexInRange)
{
    AddressMap map(16, 8, 128);
    for (Addr a = 0; a < 10000 * 128; a += 128) {
        const int s = map.sliceIndex(a);
        EXPECT_GE(s, 0);
        EXPECT_LT(s, 16);
        const int c = map.channelIndex(a);
        EXPECT_GE(c, 0);
        EXPECT_LT(c, 8);
    }
}

TEST(AddressMap, SequentialLinesSpreadUniformly)
{
    // PAE's job: even strided footprints distribute across slices.
    AddressMap map(4, 2, 128);
    std::vector<int> counts(4, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(
            map.sliceIndex(static_cast<Addr>(i) * 128))];
    for (const int c : counts) {
        EXPECT_GT(c, n / 4 - n / 40);
        EXPECT_LT(c, n / 4 + n / 40);
    }
}

TEST(AddressMap, PageStridedAccessesAlsoSpread)
{
    // A pathological 4 KB stride must not camp on one slice/channel.
    AddressMap map(8, 4, 128);
    std::vector<int> slices(8, 0);
    std::vector<int> channels(4, 0);
    const int n = 32000;
    for (int i = 0; i < n; ++i) {
        const Addr a = static_cast<Addr>(i) * 4096;
        ++slices[static_cast<std::size_t>(map.sliceIndex(a))];
        ++channels[static_cast<std::size_t>(map.channelIndex(a))];
    }
    for (const int c : slices) {
        EXPECT_GT(c, n / 8 * 8 / 10);
        EXPECT_LT(c, n / 8 * 12 / 10);
    }
    for (const int c : channels) {
        EXPECT_GT(c, n / 4 * 9 / 10);
        EXPECT_LT(c, n / 4 * 11 / 10);
    }
}

TEST(AddressMap, SubLineOffsetsMapTogether)
{
    AddressMap map(4, 2, 128);
    const Addr base = 0xabcd00;
    for (unsigned off = 0; off < 128; ++off)
        EXPECT_EQ(map.sliceIndex(base + off), map.sliceIndex(base));
}

TEST(AddressMap, SliceAndChannelChoicesAreIndependent)
{
    // Joint distribution should be close to the product of marginals.
    AddressMap map(4, 4, 128);
    int joint[4][4] = {};
    const int n = 64000;
    for (int i = 0; i < n; ++i) {
        const Addr a = static_cast<Addr>(i) * 128;
        ++joint[map.sliceIndex(a)][map.channelIndex(a)];
    }
    for (int s = 0; s < 4; ++s) {
        for (int c = 0; c < 4; ++c) {
            EXPECT_GT(joint[s][c], n / 16 * 7 / 10);
            EXPECT_LT(joint[s][c], n / 16 * 13 / 10);
        }
    }
}

} // namespace
} // namespace sac
