/** @file Unit tests for the per-chip memory controller. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "mem/address_map.hh"
#include "mem/mem_ctrl.hh"

namespace sac {
namespace {

class MemCtrlTest : public ::testing::Test
{
  protected:
    MemCtrlTest() : map(4, 2, 128), ctrl(GpuConfig{}, map, /*chip=*/1) {}

    Packet request(Addr line, PacketKind kind = PacketKind::Request)
    {
        Packet p;
        p.kind = kind;
        p.lineAddr = line;
        p.homeChip = 1;
        p.serveChip = 1;
        p.srcChip = 1;
        p.bytes = 32;
        return p;
    }

    AddressMap map;
    MemCtrl ctrl;
};

TEST_F(MemCtrlTest, ReadBecomesResponseWithMemOrigin)
{
    ctrl.push(request(0x1000), 0);
    std::vector<Packet> fills;
    for (Cycle t = 0; fills.empty() && t < 1000; ++t)
        ctrl.tick(t, fills);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills[0].kind, PacketKind::Response);
    EXPECT_TRUE(fills[0].dataFromMem);
    EXPECT_EQ(fills[0].dataChip, 1);
    EXPECT_EQ(ctrl.readsServed(), 1u);
}

TEST_F(MemCtrlTest, WritebacksAreAbsorbedSilently)
{
    ctrl.push(request(0x2000, PacketKind::Writeback), 0);
    std::vector<Packet> fills;
    for (Cycle t = 0; t < 1000; ++t)
        ctrl.tick(t, fills);
    EXPECT_TRUE(fills.empty());
    EXPECT_EQ(ctrl.writesServed(), 1u);
}

TEST_F(MemCtrlTest, WrongPartitionPanics)
{
    Packet p = request(0x1000);
    p.homeChip = 0;
    EXPECT_THROW(ctrl.push(p, 0), PanicError);
}

TEST_F(MemCtrlTest, FillSizeIsTheDramTransfer)
{
    ctrl.push(request(0x3000), 0);
    std::vector<Packet> fills;
    for (Cycle t = 0; fills.empty() && t < 1000; ++t)
        ctrl.tick(t, fills);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills[0].bytes, 128u); // full line, conventional cache
    EXPECT_EQ(ctrl.bytesServed(), 128u);
}

TEST_F(MemCtrlTest, SectoredConfigFetchesSectors)
{
    GpuConfig cfg;
    cfg.sectorsPerLine = 4;
    MemCtrl sctrl(cfg, map, 1);
    Packet p = request(0x4000);
    sctrl.push(p, 0);
    std::vector<Packet> fills;
    for (Cycle t = 0; fills.empty() && t < 1000; ++t)
        sctrl.tick(t, fills);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_EQ(fills[0].bytes, 32u); // 128 / 4 sectors
}

TEST_F(MemCtrlTest, BulkFlushSpreadsAcrossChannels)
{
    const Cycle done = ctrl.occupyBulk(112000, 0);
    // Two channels at 56 B/cy each: 56000 bytes per channel = 1000 cy.
    EXPECT_NEAR(static_cast<double>(done), 1000.0, 2.0);
}

TEST_F(MemCtrlTest, BackpressureReportsPerChannel)
{
    GpuConfig cfg;
    cfg.memQueueDepth = 1;
    MemCtrl small(cfg, map, 1);
    // Fill the channel that serves this line.
    const Addr line = 0x5000;
    ASSERT_TRUE(small.canAccept(line));
    small.push(request(line), 0);
    EXPECT_FALSE(small.canAccept(line));
}

} // namespace
} // namespace sac
