/** @file Unit tests for the DRAM channel model. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "mem/dram.hh"

namespace sac {
namespace {

Packet
readPkt(Addr line, unsigned bytes = 128)
{
    Packet p;
    p.kind = PacketKind::Request;
    p.lineAddr = line;
    p.bytes = bytes;
    return p;
}

TEST(Dram, RequestCompletesAfterServiceAndLatency)
{
    DramChannel ch(64.0, 100, 8); // 64 B/cy, 100-cycle latency
    ch.push(readPkt(0, 128), 0);
    Packet out;
    // 128 bytes at 64 B/cy = 2 cycles of service + 100 latency.
    EXPECT_FALSE(ch.popReady(out, 101));
    EXPECT_TRUE(ch.popReady(out, 102));
    EXPECT_EQ(out.lineAddr, 0u);
}

TEST(Dram, BandwidthSerializesBackToBackRequests)
{
    DramChannel ch(64.0, 0, 64);
    for (int i = 0; i < 10; ++i)
        ch.push(readPkt(static_cast<Addr>(i) * 128, 128), 0);
    Packet out;
    int completed = 0;
    // Each transfer takes 2 cycles; after 10 cycles only 5 can be done.
    for (Cycle t = 0; t <= 10; ++t) {
        while (ch.popReady(out, t))
            ++completed;
    }
    EXPECT_EQ(completed, 5);
}

TEST(Dram, QueueDepthBackpressure)
{
    DramChannel ch(1.0, 10, 2);
    EXPECT_TRUE(ch.canAccept());
    ch.push(readPkt(0), 0);
    ch.push(readPkt(128), 0);
    EXPECT_FALSE(ch.canAccept());
    // Drain one and space opens up.
    Packet out;
    Cycle t = 0;
    while (!ch.popReady(out, t))
        ++t;
    EXPECT_TRUE(ch.canAccept());
}

TEST(Dram, BytesServedAccumulates)
{
    DramChannel ch(64.0, 0, 8);
    ch.push(readPkt(0, 128), 0);
    ch.push(readPkt(128, 32), 0);
    EXPECT_EQ(ch.bytesServed(), 160u);
}

TEST(Dram, BulkOccupancyDelaysLaterRequests)
{
    DramChannel ch(64.0, 0, 8);
    const Cycle done = ch.occupyBulk(6400, 0); // 100 cycles of transfer
    EXPECT_EQ(done, 100u);
    ch.push(readPkt(0, 128), 0);
    Packet out;
    EXPECT_FALSE(ch.popReady(out, 100));
    EXPECT_TRUE(ch.popReady(out, 102));
}

TEST(Dram, IdleChannelDoesNotAccumulateCredit)
{
    DramChannel ch(64.0, 0, 8);
    // Wait a long time, then push: service still takes bytes/bw.
    ch.push(readPkt(0, 128), 1000);
    Packet out;
    EXPECT_FALSE(ch.popReady(out, 1001));
    EXPECT_TRUE(ch.popReady(out, 1002));
}

} // namespace
} // namespace sac
