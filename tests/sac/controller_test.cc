/** @file Unit tests for the SAC runtime controller. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "sac/controller.hh"

namespace sac {
namespace {

GpuConfig
cfg()
{
    auto c = GpuConfig::scaled(4);
    c.sac.profileWindow = 100;
    return c;
}

TEST(Controller, KernelStartOpensWindowMemorySide)
{
    SacOrg org;
    org.setMode(LlcMode::SmSide);
    Controller ctrl(cfg(), org);
    ctrl.beginKernel(0, 50);
    EXPECT_EQ(org.mode(), LlcMode::MemorySide);
    EXPECT_TRUE(ctrl.profiling(60));
    EXPECT_FALSE(ctrl.profiling(150));
    EXPECT_EQ(ctrl.windowEndCycle(), 150u);
}

TEST(Controller, SmFriendlyProfileSwitchesMode)
{
    SacOrg org;
    Controller ctrl(cfg(), org);
    ctrl.beginKernel(0, 0);
    // Remote-heavy, replication-friendly traffic: many truly shared
    // lines reused by every chip.
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 400; ++i) {
            for (ChipId src = 0; src < 4; ++src) {
                ctrl.profiler().onL1Miss(src, i % 4, i % 4,
                                         0x80ull * i, 0);
            }
        }
    }
    const auto d = ctrl.endWindow(/*measured_mem_hit_rate=*/0.9, 100);
    EXPECT_EQ(d.chosen, LlcMode::SmSide);
    EXPECT_EQ(org.mode(), LlcMode::SmSide);
    EXPECT_EQ(ctrl.history().size(), 1u);
}

TEST(Controller, LocalHeavyProfileStaysMemorySide)
{
    SacOrg org;
    Controller ctrl(cfg(), org);
    ctrl.beginKernel(0, 0);
    // 90% local traffic with a high memory-side hit rate: nothing to
    // gain from SM-side caching.
    for (int i = 0; i < 4000; ++i) {
        const ChipId src = i % 4;
        const ChipId home = (i % 10 == 0) ? (src + 1) % 4 : src;
        ctrl.profiler().onL1Miss(src, home, i % 4,
                                 0x100000ull * src + 0x80ull * i, 0);
    }
    const auto d = ctrl.endWindow(0.9, 100);
    EXPECT_EQ(d.chosen, LlcMode::MemorySide);
    EXPECT_EQ(org.mode(), LlcMode::MemorySide);
}

TEST(Controller, EndKernelRevertsToMemorySide)
{
    SacOrg org;
    Controller ctrl(cfg(), org);
    ctrl.beginKernel(0, 0);
    org.setMode(LlcMode::SmSide); // as if the decision switched
    EXPECT_TRUE(ctrl.endKernel()); // flush needed
    EXPECT_EQ(org.mode(), LlcMode::MemorySide);
    ctrl.beginKernel(1, 1000);
    ctrl.endWindow(0.9, 1100);
    EXPECT_FALSE(ctrl.endKernel() &&
                 ctrl.mode() == LlcMode::SmSide); // consistent state
}

TEST(Controller, DecisionRecordsInputsAndEab)
{
    SacOrg org;
    Controller ctrl(cfg(), org);
    ctrl.beginKernel(3, 0);
    ctrl.profiler().onL1Miss(0, 0, 0, 0x1000, 0);
    const auto d = ctrl.endWindow(0.7, 100);
    EXPECT_EQ(d.kernel, 3);
    EXPECT_DOUBLE_EQ(d.inputs.hitMem, 0.7);
    EXPECT_GT(d.eab.memSide.total(), 0.0);
}

TEST(Controller, EndWindowTwicePanics)
{
    SacOrg org;
    Controller ctrl(cfg(), org);
    ctrl.beginKernel(0, 0);
    ctrl.endWindow(0.5, 100);
    EXPECT_THROW(ctrl.endWindow(0.5, 200), PanicError);
}

} // namespace
} // namespace sac
