/** @file Unit and property tests for the Chip Request Directory. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sac/crd.hh"

namespace sac {
namespace {

TEST(Crd, FirstAccessMissesSecondHits)
{
    Crd crd(8, 16, 4, 1, /*sample_rate=*/1);
    crd.access(0x1000, 0, 0);
    EXPECT_EQ(crd.hits(), 0u);
    crd.access(0x1000, 0, 0);
    EXPECT_EQ(crd.hits(), 1u);
    EXPECT_EQ(crd.requests(), 2u);
}

TEST(Crd, EachChipWarmsItsOwnBit)
{
    Crd crd(8, 16, 4, 1, 1);
    crd.access(0x1000, 0, 0); // miss, sets bit 0
    crd.access(0x1000, 0, 1); // miss (one other sharer only)
    crd.access(0x1000, 0, 1); // hit for chip 1
    crd.access(0x1000, 0, 0); // hit for chip 0
    EXPECT_EQ(crd.hits(), 2u);
}

TEST(Crd, ProvenTrueSharingCountsNewChipAsHit)
{
    // Two other sharers prove the line is truly shared; a third chip's
    // first touch counts as a steady-state replica hit.
    Crd crd(8, 16, 4, 1, 1);
    crd.access(0x1000, 0, 0);
    crd.access(0x1000, 0, 1);
    EXPECT_EQ(crd.hits(), 0u);
    crd.access(0x1000, 0, 2);
    EXPECT_EQ(crd.hits(), 1u);
    crd.access(0x1000, 0, 3);
    EXPECT_EQ(crd.hits(), 2u);
}

TEST(Crd, SamplingFiltersRequests)
{
    Crd crd(8, 16, 4, 1, /*sample_rate=*/16);
    for (Addr a = 0; a < 1000 * 128; a += 128)
        crd.access(a, 0, 0);
    // Roughly 1/16 of lines are sampled.
    EXPECT_NEAR(static_cast<double>(crd.requests()), 1000.0 / 16.0, 25.0);
}

TEST(Crd, ResetCountersKeepsLearnedState)
{
    Crd crd(8, 16, 4, 1, 1);
    crd.access(0x1000, 0, 0);
    crd.resetCounters();
    EXPECT_EQ(crd.requests(), 0u);
    crd.access(0x1000, 0, 0); // warm from before: hit
    EXPECT_EQ(crd.hits(), 1u);
    EXPECT_EQ(crd.requests(), 1u);
}

TEST(Crd, FullResetForgetsEverything)
{
    Crd crd(8, 16, 4, 1, 1);
    crd.access(0x1000, 0, 0);
    crd.reset();
    crd.access(0x1000, 0, 0);
    EXPECT_EQ(crd.hits(), 0u);
}

TEST(Crd, PredictsHighForFittingWorkingSet)
{
    // Working set within the modelled slot budget: prediction should
    // approach the true steady-state hit rate.
    Crd crd(32, 16, 4, 1, /*sample_rate=*/1);
    Rng rng(1);
    const std::uint64_t lines = 100; // 100 lines x up to 4 sharers < 512
    for (int i = 0; i < 8000; ++i)
        crd.access(rng.nextBounded(lines) * 128, 0,
                   static_cast<ChipId>(rng.nextBounded(4)));
    crd.resetCounters();
    for (int i = 0; i < 8000; ++i)
        crd.access(rng.nextBounded(lines) * 128, 0,
                   static_cast<ChipId>(rng.nextBounded(4)));
    EXPECT_GT(crd.predictedHitRate(), 0.85);
}

TEST(Crd, PredictsLowForThrashingWorkingSet)
{
    // Working set far beyond the slot budget: replication thrash.
    Crd crd(32, 16, 4, 1, 1);
    Rng rng(2);
    const std::uint64_t lines = 4000; // x4 sharers >> 512 slots
    for (int i = 0; i < 8000; ++i)
        crd.access(rng.nextBounded(lines) * 128, 0,
                   static_cast<ChipId>(rng.nextBounded(4)));
    crd.resetCounters();
    for (int i = 0; i < 8000; ++i)
        crd.access(rng.nextBounded(lines) * 128, 0,
                   static_cast<ChipId>(rng.nextBounded(4)));
    EXPECT_LT(crd.predictedHitRate(), 0.3);
}

TEST(Crd, SectoredTracksPerSectorBits)
{
    Crd crd(8, 16, 4, 4, 1);
    crd.access(0x1000, 0, 0);
    crd.access(0x1000, 1, 0); // different sector: miss
    EXPECT_EQ(crd.hits(), 0u);
    crd.access(0x1000, 1, 0); // now a hit
    EXPECT_EQ(crd.hits(), 1u);
}

TEST(Crd, StorageMatchesPaperFormula)
{
    // Paper geometry: 8x16 blocks, 30-bit tag + 4 chip bits = 544 B.
    Crd paper(8, 16, 4, 1, 64);
    EXPECT_EQ(paper.storageBytes(), 544u);
    // Sectored: 4 bits per chip -> 736 B.
    Crd sectored(8, 16, 4, 4, 64);
    EXPECT_EQ(sectored.storageBytes(), 736u);
}

TEST(Crd, FallbackHitRateWithoutSamples)
{
    Crd crd(8, 16, 4, 1, 1);
    EXPECT_DOUBLE_EQ(crd.predictedHitRate(0.42), 0.42);
}

} // namespace
} // namespace sac
