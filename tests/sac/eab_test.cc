/** @file Unit and property tests for the EAB analytical model. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "sac/eab.hh"

namespace sac::eab {
namespace {

ArchParams
arch()
{
    ArchParams a;
    a.bIntra = 16384; // 4 chips x 4096
    a.bInter = 1536;  // 4 chips x 384
    a.bLlc = 16384;
    a.bMem = 1792;
    return a;
}

TEST(Eab, ArchParamsFromConfigMatchHandValues)
{
    const auto a = ArchParams::fromConfig(GpuConfig::paperBaseline());
    EXPECT_NEAR(a.bIntra, 16384.0, 1.0);
    EXPECT_NEAR(a.bInter, 1536.0, 1.0);
    EXPECT_NEAR(a.bLlc, 16384.0, 1.0);
    EXPECT_NEAR(a.bMem, 1792.0, 64.0);
}

TEST(Eab, MemorySideRemoteIsCappedByInterChipLinks)
{
    WorkloadParams wl;
    wl.rLocal = 0.25; // 3/4 remote: bandwidth-hungry remote class
    wl.hitMem = 1.0;  // everything hits
    wl.hitSm = 1.0;
    const auto r = evaluate(arch(), wl);
    // Remote EAB can never exceed B_inter under memory-side.
    EXPECT_LE(r.memSide.remote, 1536.0 + 1e-9);
    // SM-side serves remote data from the local LLC: way above B_inter.
    EXPECT_GT(r.smSide.remote, 1536.0);
}

TEST(Eab, SmSideWithThrashingFallsBehind)
{
    WorkloadParams wl;
    wl.rLocal = 0.7;
    wl.hitMem = 0.9;  // memory-side keeps its hit rate
    wl.hitSm = 0.2;   // replication thrashes
    const auto r = evaluate(arch(), wl);
    EXPECT_GT(r.memSide.total(), r.smSide.total());
    EXPECT_FALSE(r.preferSmSide(0.05));
}

TEST(Eab, SmSideWithReplicationFriendlySharingWins)
{
    WorkloadParams wl;
    wl.rLocal = 0.4;
    wl.hitMem = 0.9;
    wl.hitSm = 0.85;
    const auto r = evaluate(arch(), wl);
    EXPECT_TRUE(r.preferSmSide(0.05));
}

TEST(Eab, HandComputedMemorySideCase)
{
    // All requests local, perfect hits: EAB_local =
    // min(B_intra, B_LLC * LSU * hit) and EAB_remote = 0-ish cap.
    WorkloadParams wl;
    wl.rLocal = 1.0;
    wl.lsuMem = 1.0;
    wl.hitMem = 1.0;
    const auto r = evaluate(arch(), wl);
    EXPECT_NEAR(r.memSide.local, 16384.0, 1e-6);
    // Remote class carries no requests: hit/miss terms are zero, so
    // the min picks the zero traffic terms.
    EXPECT_NEAR(r.memSide.remote, 0.0, 1e-6);
}

TEST(Eab, HandComputedMissBoundedCase)
{
    // No hits: local EAB bounded by memory bandwidth share.
    WorkloadParams wl;
    wl.rLocal = 1.0;
    wl.lsuMem = 1.0;
    wl.hitMem = 0.0;
    const auto r = evaluate(arch(), wl);
    // min(B_LLC_miss = 16384, B_mem = 1792) = 1792.
    EXPECT_NEAR(r.memSide.local, 1792.0, 1e-6);
}

TEST(Eab, LowLsuShrinksLlcBandwidth)
{
    WorkloadParams uniform;
    uniform.rLocal = 1.0;
    uniform.lsuMem = 1.0;
    uniform.hitMem = 1.0;
    WorkloadParams camped = uniform;
    camped.lsuMem = 1.0 / 64.0; // all requests on one slice
    const auto ru = evaluate(arch(), uniform);
    const auto rc = evaluate(arch(), camped);
    EXPECT_LT(rc.memSide.total(), ru.memSide.total() / 10.0);
}

TEST(Eab, ThresholdGatesTheDecision)
{
    Result r;
    r.memSide.local = 1000.0;
    r.smSide.local = 1040.0;
    EXPECT_TRUE(r.preferSmSide(0.0));
    EXPECT_FALSE(r.preferSmSide(0.05)); // 4% gain < 5% threshold
}

TEST(Eab, SliceUniformityFormula)
{
    // Uniform: LSU = 1; all-on-one: LSU = 1/N.
    EXPECT_DOUBLE_EQ(sliceUniformity({10, 10, 10, 10}), 1.0);
    EXPECT_DOUBLE_EQ(sliceUniformity({40, 0, 0, 0}), 0.25);
    EXPECT_DOUBLE_EQ(sliceUniformity({0, 0, 0, 0}), 1.0); // no traffic
    // Mixed case: (1 + 0.5 + 0.25 + 0.25) / 4.
    EXPECT_DOUBLE_EQ(sliceUniformity({20, 10, 5, 5}), 0.5);
}

TEST(Eab, MonotonicInSmSideHitRateProperty)
{
    WorkloadParams wl;
    wl.rLocal = 0.5;
    wl.hitMem = 0.8;
    double prev = -1.0;
    for (double h = 0.0; h <= 1.0; h += 0.05) {
        wl.hitSm = h;
        const auto r = evaluate(arch(), wl);
        EXPECT_GE(r.smSide.total(), prev - 1e-9);
        prev = r.smSide.total();
    }
}

TEST(Eab, TotalsNeverExceedPhysicalCapsProperty)
{
    Rng rng(77);
    const auto a = arch();
    for (int i = 0; i < 500; ++i) {
        WorkloadParams wl;
        wl.rLocal = rng.nextDouble();
        wl.lsuMem = 0.1 + 0.9 * rng.nextDouble();
        wl.lsuSm = 0.1 + 0.9 * rng.nextDouble();
        wl.hitMem = rng.nextDouble();
        wl.hitSm = rng.nextDouble();
        const auto r = evaluate(a, wl);
        EXPECT_LE(r.memSide.local, a.bIntra + 1e-6);
        EXPECT_LE(r.memSide.remote, a.bInter + 1e-6);
        EXPECT_LE(r.smSide.total(), a.bIntra + 1e-6);
        EXPECT_GE(r.memSide.total(), 0.0);
        EXPECT_GE(r.smSide.total(), 0.0);
    }
}

TEST(Eab, SummaryMentionsBothConfigs)
{
    WorkloadParams wl;
    const auto text = evaluate(arch(), wl).summary();
    EXPECT_NE(text.find("mem-side"), std::string::npos);
    EXPECT_NE(text.find("SM-side"), std::string::npos);
}

TEST(Eab, InvalidInputsPanic)
{
    WorkloadParams wl;
    wl.rLocal = 1.5;
    EXPECT_THROW(evaluate(arch(), wl), PanicError);
    wl.rLocal = 0.5;
    wl.hitMem = -0.1;
    EXPECT_THROW(evaluate(arch(), wl), PanicError);
}

} // namespace
} // namespace sac::eab
