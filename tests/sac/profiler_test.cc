/** @file Unit tests for SAC's profiling counters. */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/log.hh"
#include "sac/profiler.hh"

namespace sac {
namespace {

GpuConfig
cfg()
{
    return GpuConfig::scaled(4);
}

TEST(Profiler, CountsTotalAndLocalRequests)
{
    Profiler p(cfg());
    p.onL1Miss(/*src=*/0, /*home=*/0, /*slice=*/0, 0x1000, 0);
    p.onL1Miss(0, 1, 0, 0x2000, 0);
    p.onL1Miss(2, 2, 1, 0x3000, 0);
    EXPECT_EQ(p.totalRequests(), 3u);
    EXPECT_EQ(p.localRequests(), 2u);
}

TEST(Profiler, RLocalComputedFromCounters)
{
    Profiler p(cfg());
    for (int i = 0; i < 30; ++i)
        p.onL1Miss(0, 0, 0, 0x80ull * i, 0);
    for (int i = 0; i < 10; ++i)
        p.onL1Miss(0, 1, 0, 0x100000 + 0x80ull * i, 0);
    const auto wl = p.workloadParams(0.5);
    EXPECT_NEAR(wl.rLocal, 0.75, 1e-9);
    EXPECT_DOUBLE_EQ(wl.hitMem, 0.5);
}

TEST(Profiler, LsuReflectsSlicePlacement)
{
    Profiler p(cfg());
    // Memory-side: all requests home on chip 0 slice 0 (camped);
    // SM-side: they come from four different chips (spread).
    for (ChipId src = 0; src < 4; ++src)
        p.onL1Miss(src, /*home=*/0, /*slice=*/0, 0x1000, 0);
    const auto wl = p.workloadParams(0.5);
    EXPECT_LT(wl.lsuMem, wl.lsuSm);
}

TEST(Profiler, CrdSeesRequestsAtTheHomeChip)
{
    Profiler p(cfg());
    // Sampled or not, the CRD of chip 2 observes these; use many lines
    // so some are sampled.
    for (int i = 0; i < 2000; ++i)
        p.onL1Miss(1, 2, 0, 0x80ull * i, 0);
    EXPECT_GT(p.crd(2).requests(), 0u);
    EXPECT_EQ(p.crd(0).requests(), 0u);
}

TEST(Profiler, ResetClearsEverything)
{
    Profiler p(cfg());
    p.onL1Miss(0, 1, 0, 0x1000, 0);
    p.reset();
    EXPECT_EQ(p.totalRequests(), 0u);
    const auto wl = p.workloadParams(0.3);
    EXPECT_DOUBLE_EQ(wl.rLocal, 1.0); // convention with no data
    EXPECT_DOUBLE_EQ(wl.hitSm, 0.3);  // falls back to measured rate
}

TEST(Profiler, StorageIsSmall)
{
    // The paper reports 620 B/chip for its 8x16 CRD; our variant
    // scales the sets by the chip count, so allow a few KB but keep
    // the order of magnitude honest.
    Profiler p(cfg());
    EXPECT_LT(p.storageBytesPerChip(), 4096u);
    EXPECT_GT(p.storageBytesPerChip(), 500u);
}

TEST(Profiler, BadInputsPanic)
{
    Profiler p(cfg());
    EXPECT_THROW(p.onL1Miss(9, 0, 0, 0, 0), PanicError);
    EXPECT_THROW(p.onL1Miss(0, 9, 0, 0, 0), PanicError);
    EXPECT_THROW(p.onL1Miss(0, 0, 99, 0, 0), PanicError);
}

} // namespace
} // namespace sac
