/**
 * @file
 * sacsimd — the SAC experiment daemon.
 *
 * Listens on a local unix socket for sac.sweep.v1 plans (one
 * newline-delimited JSON request per line), runs each plan on the
 * fault-isolated ExperimentEngine worker pool, and streams
 * sac.sweep-result.v1 record events back as jobs complete — in plan
 * order, flushed per line. With --cache DIR every completed job is
 * memoized in a persistent content-addressed store, so resubmitting a
 * plan (same session or months later) replays byte-identical results
 * without simulating anything.
 *
 *   sacsimd --socket /tmp/sacsimd.sock --cache ~/.cache/sacsim --jobs 4
 *   sacsimd --stdio --cache cache.d       # one session over stdio
 *
 * Try it:
 *
 *   echo '{"schema":"sac.sweep.v1","id":"r1","plan":[{"benchmark":
 *   "CFD","org":"all"}]}' | nc -U /tmp/sacsimd.sock
 *
 * See docs/SERVICE.md for the protocol and cache layout.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "service/daemon.hh"

namespace {

using namespace sac;

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: sacsimd [options]\n"
        "  --socket PATH          listen on a unix socket at PATH\n"
        "  --stdio                serve one session on stdin/stdout\n"
        "                         instead of a socket\n"
        "  --cache DIR            persist results in the\n"
        "                         content-addressed cache at DIR\n"
        "  --jobs N               worker threads per plan\n"
        "                         (0 = all hardware threads, "
        "default 1)\n"
        "  --connections N        exit after serving N connections\n"
        "                         (0 = serve forever, default)\n";
    std::exit(code);
}

int
run(int argc, char **argv)
{
    service::DaemonOptions options;
    bool stdio = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "sacsimd: missing value for " << arg << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--socket")
            options.socketPath = value();
        else if (arg == "--stdio")
            stdio = true;
        else if (arg == "--cache")
            options.cacheDir = value();
        else if (arg == "--jobs")
            options.jobs = static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--connections")
            options.connections =
                static_cast<unsigned>(std::stoul(value()));
        else {
            std::cerr << "sacsimd: unknown option '" << arg
                      << "' (try --help)\n";
            return 1;
        }
    }
    if (!stdio && options.socketPath.empty()) {
        std::cerr << "sacsimd: need --socket PATH or --stdio "
                     "(try --help)\n";
        return 1;
    }

    service::Daemon daemon(std::move(options));
    if (stdio) {
        daemon.serveStream(std::cin, std::cout);
        return 0;
    }
    return daemon.serve();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "sacsimd: " << e.what() << "\n";
        return 1;
    }
}
