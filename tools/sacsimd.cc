/**
 * @file
 * sacsimd — the SAC experiment daemon.
 *
 * Listens on a local unix socket for sac.sweep.v1 plans (one
 * newline-delimited JSON request per line), serves up to
 * --connections client sessions at once, runs each plan on the shared
 * fault-isolated ExperimentEngine worker pool, and streams
 * sac.sweep-result.v1 record events back as jobs complete — in plan
 * order, flushed per line. With --cache DIR every completed job is
 * memoized in a persistent content-addressed store, so resubmitting a
 * plan (same session or months later) replays byte-identical results
 * without simulating anything; --cache-max-bytes/--cache-max-entries
 * bound the store with crash-safe LRU pruning.
 *
 * Plans may carry a "deadline_ms" budget (and --max-plan-wall-ms caps
 * every plan daemon-side); expired plans finish as timed_out records.
 * SIGTERM/SIGINT drain gracefully: in-flight plans get --drain-ms of
 * grace, then cancel; the daemon exits 0 with the cache intact.
 *
 *   sacsimd --socket /tmp/sacsimd.sock --cache ~/.cache/sacsim --jobs 4
 *   sacsimd --stdio --cache cache.d       # one session over stdio
 *   sacsimd --cache cache.d --cache-max-entries 1000 --prune-only
 *
 * Try it:
 *
 *   echo '{"schema":"sac.sweep.v1","id":"r1","plan":[{"benchmark":
 *   "CFD","org":"all"}]}' | nc -U /tmp/sacsimd.sock
 *
 * See docs/SERVICE.md for the protocol, concurrency model and cache
 * layout.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "service/daemon.hh"

namespace {

using namespace sac;

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: sacsimd [options]\n"
        "  --socket PATH          listen on a unix socket at PATH\n"
        "  --stdio                serve one session on stdin/stdout\n"
        "                         instead of a socket\n"
        "  --cache DIR            persist results in the\n"
        "                         content-addressed cache at DIR\n"
        "  --jobs N               worker threads per plan\n"
        "                         (0 = all hardware threads, "
        "default 1)\n"
        "  --connections N        max simultaneous client sessions\n"
        "                         (0 = unbounded, default 4)\n"
        "  --max-sessions N       exit after serving N sessions\n"
        "                         (0 = serve forever, default)\n"
        "  --plan-queue N         plans allowed to wait behind the\n"
        "                         running one (default 8); overflow\n"
        "                         gets a retryable error event\n"
        "  --max-plan-wall-ms MS  cap every plan's wall clock; jobs\n"
        "                         past it finish as timed_out (0 =\n"
        "                         no cap, default)\n"
        "  --drain-ms MS          grace for in-flight plans on\n"
        "                         SIGTERM/SIGINT before they are\n"
        "                         cancelled (default 5000)\n"
        "  --max-line-bytes N     longest accepted request line\n"
        "                         (default 1048576)\n"
        "  --cache-max-bytes N    prune the cache to N bytes after\n"
        "                         each plan (0 = unbounded, default)\n"
        "  --cache-max-entries N  prune the cache to N entries after\n"
        "                         each plan (0 = unbounded, default)\n"
        "  --prune-only           prune the cache to budget, report,\n"
        "                         and exit (maintenance mode)\n"
        "  --verify-cache         integrity-scan the cache and exit\n"
        "                         nonzero if any entry is rejected\n";
    std::exit(code);
}

int
pruneOnly(const service::DaemonOptions &options)
{
    if (options.cacheDir.empty()) {
        std::cerr << "sacsimd: --prune-only needs --cache DIR\n";
        return 1;
    }
    service::ResultCache cache(options.cacheDir);
    const auto report = cache.prune(options.cacheBudget);
    if (!report.ran) {
        std::cout << "prune skipped ("
                  << (options.cacheBudget.any()
                          ? "another pruner holds the lock"
                          : "no budget configured")
                  << ")\n";
        return 0;
    }
    std::cout << "pruned " << report.removedEntries << " of "
              << report.scannedEntries << " entries ("
              << report.removedBytes << " of " << report.scannedBytes
              << " bytes), swept " << report.staleTmps
              << " stale temporaries\n";
    return 0;
}

int
verifyCache(const service::DaemonOptions &options)
{
    if (options.cacheDir.empty()) {
        std::cerr << "sacsimd: --verify-cache needs --cache DIR\n";
        return 1;
    }
    service::ResultCache cache(options.cacheDir);
    const auto report = cache.verify();
    std::cout << report.entries << " entries, " << report.bytes
              << " bytes, " << report.rejected << " rejected\n";
    return report.rejected == 0 ? 0 : 1;
}

int
run(int argc, char **argv)
{
    service::DaemonOptions options;
    bool stdio = false;
    bool pruneMode = false;
    bool verifyMode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "sacsimd: missing value for " << arg << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--socket")
            options.socketPath = value();
        else if (arg == "--stdio")
            stdio = true;
        else if (arg == "--cache")
            options.cacheDir = value();
        else if (arg == "--jobs")
            options.jobs = static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--connections")
            options.connections =
                static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--max-sessions")
            options.maxSessions =
                static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--plan-queue")
            options.planQueue =
                static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--max-plan-wall-ms")
            options.maxPlanWallMs = std::stoull(value());
        else if (arg == "--drain-ms")
            options.drainMs = std::stoull(value());
        else if (arg == "--max-line-bytes")
            options.maxLineBytes =
                static_cast<std::size_t>(std::stoull(value()));
        else if (arg == "--cache-max-bytes")
            options.cacheBudget.maxBytes = std::stoull(value());
        else if (arg == "--cache-max-entries")
            options.cacheBudget.maxEntries = std::stoull(value());
        else if (arg == "--prune-only")
            pruneMode = true;
        else if (arg == "--verify-cache")
            verifyMode = true;
        else {
            std::cerr << "sacsimd: unknown option '" << arg
                      << "' (try --help)\n";
            return 1;
        }
    }
    if (pruneMode)
        return pruneOnly(options);
    if (verifyMode)
        return verifyCache(options);
    if (!stdio && options.socketPath.empty()) {
        std::cerr << "sacsimd: need --socket PATH or --stdio "
                     "(try --help)\n";
        return 1;
    }

    service::Daemon daemon(std::move(options));
    if (stdio) {
        daemon.serveStream(std::cin, std::cout);
        return 0;
    }
    service::Daemon::installSignalHandlers();
    return daemon.serve();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "sacsimd: " << e.what() << "\n";
        return 1;
    }
}
