/**
 * @file
 * sacsim — command-line driver for the SAC multi-chip GPU simulator.
 *
 * Runs (workload, organization, configuration) experiments and prints
 * the results; the Swiss-army knife for exploring the design space
 * without writing C++. Organization sweeps execute in parallel
 * through the ExperimentEngine (--jobs), results can be exported as a
 * sac.results.v3 JSON document (--json), and runs can be traced:
 * --timeline writes epoch-sampled timelines, --trace-events writes a
 * Chrome trace (load it at https://ui.perfetto.dev) or, with a
 * .jsonl path, a JSONL event stream.
 *
 * Sweeps are fault tolerant: a failing job is reported with a status
 * and diagnostic instead of killing the sweep (exit code 2 flags it),
 * per-job watchdogs bound runaway simulations (--max-cycles,
 * --max-wall-ms), and --resume FILE checkpoints completed jobs to a
 * JSONL file so an interrupted sweep re-runs only what's missing.
 *
 *   sacsim --list
 *   sacsim --benchmark CFD --org sac
 *   sacsim --benchmark CFD --org all --jobs 4 --json cfd.json
 *   sacsim --benchmark CFD --org sac --timeline t.json --trace-events e.json
 *   sacsim --benchmark GEMM --org mem,sac --scale 4 --input-scale 0.125
 *   sacsim --benchmark RN --org sm --coherence hw --sectors 4 --stats
 *   sacsim --benchmark SN --org sac --record sn.trace
 *   sacsim --trace sn.trace --org mem --apw 256
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/json.hh"
#include "common/log.hh"
#include "service/result_cache.hh"
#include "sim/plan.hh"
#include "sim/report.hh"
#include "sim/result_io.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "telemetry/export.hh"
#include "workload/suite.hh"
#include "workload/trace_file.hh"
#include "workload/tracegen.hh"

namespace {

using namespace sac;

struct Options
{
    std::string benchmark = "CFD";
    std::string scenarioPath;
    std::string org = "all";
    int scale = 4;
    std::uint64_t seed = 1;
    double inputScale = 1.0;
    std::string coherence = "sw";
    unsigned sectors = 1;
    double interChipBw = 0.0;    // 0 = config default
    Cycle occupancyInterval = 0; // 0 = config default (2048)
    unsigned jobs = 1;
    std::string jsonPath;
    bool stats = false;
    bool list = false;
    std::string recordPath;
    std::string tracePath;
    std::uint64_t apw = 0; // 0 = profile default
    std::string timelinePath;
    std::string traceEventsPath;
    Cycle epoch = 0; // 0 = default (2048) when --timeline is given
    bool fastForward = true;
    std::string resumePath;
    std::string cachePath;
    Cycle maxCycles = 0;    // 0 = no cycle deadline
    double maxWallMs = 0.0; // 0 = no wall-clock deadline
    int retries = 3;        // total attempts for transient failures
};

/** Telemetry the requested outputs imply. */
telemetry::Options
telemetryOptions(const Options &o)
{
    telemetry::Options t;
    if (!o.timelinePath.empty() || o.epoch > 0)
        t.epoch = o.epoch > 0 ? o.epoch : 2048;
    t.events = !o.traceEventsPath.empty();
    return t;
}

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: sacsim [options]\n"
        "  --list                 print the Table 4 benchmark suite\n"
        "  --benchmark NAME       workload to run (default CFD)\n"
        "  --scenario FILE        run a multi-tenant scenario "
        "(sac.scenario.v1\n"
        "                         JSON; replaces --benchmark, see "
        "examples/)\n"
        "  --org KINDS            comma-separated list of\n"
        "                         mem|sm|static|dynamic|sac, or 'all'\n"
        "                         (default all; e.g. --org mem,sac)\n"
        "  --jobs N               run the sweep on N worker threads\n"
        "                         (0 = all hardware threads, default 1)\n"
        "  --json FILE            write results as JSON ('-' = stdout)\n"
        "  --scale N              topology divisor: 1=paper machine "
        "(default 4)\n"
        "  --seed N               experiment seed (default 1)\n"
        "  --input-scale F        multiply the data set (Fig. 13 axis)\n"
        "  --coherence sw|hw      LLC coherence (default sw)\n"
        "  --sectors N            sectors per line: 1|2|4 (default 1)\n"
        "  --interchip-bw GBPS    per-chip inter-chip bandwidth "
        "override\n"
        "  --occupancy-interval N cycles between Fig. 9 LLC occupancy\n"
        "                         samples (default 2048)\n"
        "  --apw N                accesses per warp per kernel "
        "override\n"
        "  --record FILE          record the generated trace to FILE\n"
        "  --trace FILE           replay FILE instead of a synthetic "
        "workload\n"
        "  --stats                dump the full per-chip stats tree\n"
        "  --timeline FILE        write epoch-sampled timelines "
        "(sac.timeline.v1 JSON)\n"
        "  --trace-events FILE    write simulation events as a Chrome "
        "trace\n"
        "                         (Perfetto-loadable; a .jsonl path "
        "writes JSONL)\n"
        "  --epoch N              telemetry sampling epoch in cycles\n"
        "                         (default 2048 when --timeline is "
        "given)\n"
        "  --no-fast-forward      force the per-cycle reference loop\n"
        "                         (results are bit-identical either "
        "way;\n"
        "                         this is the differential-testing "
        "hatch)\n"
        "  --resume FILE          checkpoint completed jobs to FILE "
        "(JSONL)\n"
        "                         and skip jobs already completed "
        "there\n"
        "  --cache DIR            serve identical jobs from the\n"
        "                         persistent result cache in DIR and\n"
        "                         add fresh results to it\n"
        "  --max-cycles N         fail a job past N simulated cycles\n"
        "  --max-wall-ms X        fail a job past X wall-clock ms\n"
        "  --retries N            attempts per job for transient "
        "failures\n"
        "                         (default 3)\n";
    std::exit(code);
}

/** "all" or a comma-separated subset, e.g. "mem,sac". */
std::vector<OrgKind>
parseOrgList(const std::string &spec)
{
    if (spec == "all")
        return ExperimentPlan::allOrganizations();
    std::vector<OrgKind> kinds;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string item =
            spec.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (item.empty())
            fatal("empty entry in --org list '", spec, "'");
        kinds.push_back(orgKindFromName(item));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return kinds;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--list")
            o.list = true;
        else if (arg == "--benchmark")
            o.benchmark = value();
        else if (arg == "--scenario")
            o.scenarioPath = value();
        else if (arg == "--org")
            o.org = value();
        else if (arg == "--jobs")
            o.jobs = static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--json")
            o.jsonPath = value();
        else if (arg == "--scale")
            o.scale = std::stoi(value());
        else if (arg == "--seed")
            o.seed = std::stoull(value());
        else if (arg == "--input-scale")
            o.inputScale = std::stod(value());
        else if (arg == "--coherence")
            o.coherence = value();
        else if (arg == "--sectors")
            o.sectors = static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--interchip-bw")
            o.interChipBw = std::stod(value());
        else if (arg == "--occupancy-interval")
            o.occupancyInterval = std::stoull(value());
        else if (arg == "--apw")
            o.apw = std::stoull(value());
        else if (arg == "--record")
            o.recordPath = value();
        else if (arg == "--trace")
            o.tracePath = value();
        else if (arg == "--stats")
            o.stats = true;
        else if (arg == "--timeline")
            o.timelinePath = value();
        else if (arg == "--trace-events")
            o.traceEventsPath = value();
        else if (arg == "--epoch")
            o.epoch = std::stoull(value());
        else if (arg == "--no-fast-forward")
            o.fastForward = false;
        else if (arg == "--resume")
            o.resumePath = value();
        else if (arg == "--cache")
            o.cachePath = value();
        else if (arg == "--max-cycles")
            o.maxCycles = std::stoull(value());
        else if (arg == "--max-wall-ms")
            o.maxWallMs = std::stod(value());
        else if (arg == "--retries")
            o.retries = std::stoi(value());
        else
            fatal("unknown option '", arg, "' (try --help)");
    }
    return o;
}

void
listSuite()
{
    report::Table t({"name", "group", "CTAs", "footprint MB",
                     "true-shared MB", "false-shared MB", "kernels"});
    for (const auto &p : benchmarkSuite()) {
        t.addRow({p.name, p.smSidePreferred ? "SP" : "MP",
                  std::to_string(p.ctas), report::num(p.footprintMB, 0),
                  report::num(p.trueSharedMB, 0),
                  report::num(p.falseSharedMB, 0),
                  std::to_string(p.numKernels)});
    }
    t.print(std::cout);
}

/**
 * Serial path for the modes the engine cannot parallelize: trace
 * record/replay (a shared file is inherently ordered) and --stats
 * (needs the live System after the run).
 */
RunResult
runOne(const Options &o, const GpuConfig &cfg,
       const WorkloadProfile &profile, OrgKind kind, bool dump_stats)
{
    std::unique_ptr<TraceSource> source;
    std::unique_ptr<std::ofstream> record;
    std::unique_ptr<SharingTraceGen> gen;

    if (!o.tracePath.empty()) {
        source = std::make_unique<TraceFileSource>(
            TraceFileSource::fromFile(o.tracePath));
    } else {
        gen = std::make_unique<SharingTraceGen>(
            profile.scaledData(dataScale(cfg)), cfg, o.seed);
        if (!o.recordPath.empty()) {
            record = std::make_unique<std::ofstream>(o.recordPath);
            if (!*record)
                fatal("cannot open '", o.recordPath, "' for writing");
            source = std::make_unique<TraceRecorder>(*gen, *record);
        }
    }
    TraceSource &trace = source ? *source : *gen;

    System system(cfg, kind, trace);
    system.setFastForward(o.fastForward);
    const auto topts = telemetryOptions(o);
    if (topts.enabled())
        system.enableTelemetry(topts);
    const auto result =
        system.run(kernelsFor(profile.scaledData(dataScale(cfg))));
    if (dump_stats)
        system.dumpStats(std::cout);
    return result;
}

/** True when the request needs the serial single-System path. */
bool
needsSerialPath(const Options &o, std::size_t num_orgs)
{
    return !o.tracePath.empty() || !o.recordPath.empty() ||
           (o.stats && num_orgs == 1);
}

void
printRecords(const std::vector<RunRecord> &records)
{
    // Baseline for speedups: the first row that actually ran (a
    // failed row has no cycle count to compare against).
    std::optional<RunResult> baseline;
    report::Table t({"organization", "status", "cycles", "speedup",
                     "LLC miss", "eff LLC BW", "remote frac",
                     "avg load lat", "wall ms"});
    for (const auto &rec : records) {
        const auto &r = rec.result;
        if (r.status != RunStatus::Ok) {
            t.addRow({r.organization, toString(r.status), "-", "-", "-",
                      "-", "-", "-", report::num(rec.wallMs, 0)});
            continue;
        }
        if (!baseline)
            baseline = r;
        t.addRow({r.organization, toString(r.status),
                  std::to_string(r.cycles),
                  report::times(speedup(*baseline, r)),
                  report::percent(r.llcMissRate()),
                  report::num(r.effLlcBw),
                  report::percent(r.llcRemoteFraction),
                  report::num(r.avgLoadLatency, 0),
                  report::num(rec.wallMs, 0)});
    }
    for (const auto &rec : records) {
        if (rec.result.status != RunStatus::Ok) {
            std::cerr << rec.label << " "
                      << toString(rec.result.status) << " after "
                      << rec.attempts << " attempt(s): "
                      << rec.result.diagnostic << "\n";
        }
    }
    for (const auto &rec : records) {
        for (const auto &d : rec.result.sacDecisions) {
            std::cout << "SAC kernel " << d.kernel << " -> "
                      << toString(d.chosen) << "\n";
        }
    }
    t.print(std::cout);

    // Scenario runs: the per-stream breakdown under the machine table.
    bool any_streams = false;
    for (const auto &rec : records)
        any_streams = any_streams || !rec.result.streams.empty();
    if (!any_streams)
        return;
    report::Table st({"organization", "stream", "launch", "finish",
                      "kernels", "LLC hit", "avg load lat",
                      "flush stall"});
    for (const auto &rec : records) {
        for (const auto &s : rec.result.streams) {
            const double hit_rate =
                s.llcRequests
                    ? static_cast<double>(s.llcHits) /
                          static_cast<double>(s.llcRequests)
                    : 0.0;
            st.addRow({rec.result.organization,
                       std::to_string(s.stream) + ":" + s.name,
                       std::to_string(s.launchCycle),
                       std::to_string(s.finishCycle),
                       std::to_string(s.kernelCycles.size()),
                       report::percent(hit_rate),
                       report::num(s.avgLoadLatency, 0),
                       std::to_string(s.flushStallCycles)});
        }
    }
    std::cout << "\n";
    st.print(std::cout);
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    return out;
}

/**
 * --timeline: one sac.timeline.v1 document holding every record's
 * timeline (events included), keyed by the record label.
 */
void
writeTimelines(const std::string &path,
               const std::vector<RunRecord> &records)
{
    json::Builder timelines('[');
    std::size_t written = 0;
    for (const auto &rec : records) {
        if (!rec.result.timeline)
            continue;
        json::Builder entry('{');
        entry.field("label", json::escape(rec.label))
            .field("timeline", telemetry::toJson(*rec.result.timeline));
        timelines.item(entry.close('}'));
        ++written;
    }
    json::Builder doc('{');
    doc.field("schema", json::escape("sac.timeline.v1"))
        .field("timelines", timelines.close(']'));

    auto out = openOut(path);
    out << doc.close('}') << "\n";
    std::cerr << "wrote " << written << " timeline(s) to " << path << "\n";
}

/**
 * --trace-events: a combined Chrome trace with one Perfetto process
 * per record, or a JSONL event stream when the path ends in .jsonl.
 */
void
writeTraceEvents(const std::string &path,
                 const std::vector<RunRecord> &records)
{
    const bool jsonl = path.size() >= 6 &&
                       path.compare(path.size() - 6, 6, ".jsonl") == 0;
    auto out = openOut(path);
    if (jsonl) {
        for (const auto &rec : records) {
            if (rec.result.timeline)
                telemetry::writeJsonl(out, *rec.result.timeline,
                                      rec.label);
        }
    } else {
        json::Builder events('[');
        int pid = 0;
        for (const auto &rec : records) {
            if (rec.result.timeline) {
                telemetry::appendChromeEvents(events, *rec.result.timeline,
                                              rec.label, pid++);
            }
        }
        json::Builder doc('{');
        doc.field("traceEvents", events.close(']'))
            .field("displayTimeUnit", json::escape("ns"));
        out << doc.close('}') << "\n";
    }
    std::cerr << "wrote trace events to " << path << "\n";
}

int
run(const Options &o)
{
    if (o.list) {
        listSuite();
        return 0;
    }

    GpuConfig cfg = GpuConfig::scaled(o.scale);
    cfg.seed = o.seed;
    cfg.coherence =
        o.coherence == "hw" ? CoherenceKind::Hardware
                            : CoherenceKind::Software;
    cfg.sectorsPerLine = o.sectors;
    if (o.interChipBw > 0.0)
        cfg.interChipBw = o.interChipBw;
    if (o.occupancyInterval > 0)
        cfg.occupancyInterval = o.occupancyInterval;
    cfg.validate();

    std::optional<Scenario> scenario;
    if (!o.scenarioPath.empty()) {
        // The engine path only: the serial single-System modes have no
        // scenario plumbing. Per-stream inputScale/apw live in the
        // scenario file, so the global knobs are rejected as ambiguous.
        if (!o.tracePath.empty() || !o.recordPath.empty() || o.stats) {
            fatal("--scenario cannot be combined with --trace, "
                  "--record or --stats");
        }
        if (o.apw > 0) {
            fatal("--apw does not apply to scenarios; set \"apw\" on "
                  "each stream in ", o.scenarioPath);
        }
        scenario = scenarioFromFile(o.scenarioPath);
    }

    WorkloadProfile profile = findBenchmark(o.benchmark);
    profile = profile.withInputScale(o.inputScale);
    if (o.apw > 0) {
        for (auto &phase : profile.phases)
            phase.accessesPerWarp = o.apw;
    }

    if (scenario) {
        std::cout << "scenario " << scenario->name() << " ("
                  << scenario->streams.size() << " stream(s)) on "
                  << cfg.summary() << "\n\n";
    } else {
        std::cout << "workload " << profile.name << " (x" << o.inputScale
                  << ") on " << cfg.summary() << "\n\n";
    }

    const std::vector<OrgKind> kinds = parseOrgList(o.org);
    const telemetry::Options topts = telemetryOptions(o);
    std::vector<RunRecord> records;
    bool wrote_json = false;

    if (needsSerialPath(o, kinds.size())) {
        if (!o.resumePath.empty()) {
            fatal("--resume requires the engine path; it cannot be "
                  "combined with --trace, --record or single-org "
                  "--stats");
        }
        if (!o.cachePath.empty()) {
            fatal("--cache requires the engine path; it cannot be "
                  "combined with --trace, --record or single-org "
                  "--stats");
        }
        for (const auto kind : kinds) {
            const bool dump = o.stats && kinds.size() == 1;
            const auto t0 = std::chrono::steady_clock::now();
            RunRecord rec;
            rec.jobIndex = records.size();
            rec.label = profile.name + std::string("/") + toString(kind);
            rec.benchmark = profile.name;
            rec.seed = o.seed;
            rec.result = runOne(o, cfg, profile, kind, dump);
            rec.wallMs = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
            records.push_back(std::move(rec));
        }
    } else {
        ExperimentPlan plan;
        if (scenario) {
            for (const auto kind : kinds) {
                ExperimentJob job;
                job.scenario = *scenario;
                job.config = cfg;
                job.org = kind;
                job.seed = o.seed;
                plan.add(std::move(job));
            }
        } else {
            plan.addOrgSweep(profile, cfg, kinds, o.seed);
        }
        plan.setFastForward(o.fastForward);
        if (topts.enabled())
            plan.enableTelemetry(topts);
        RunLimits limits;
        limits.maxCycles = o.maxCycles;
        limits.maxWallMs = o.maxWallMs;
        if (limits.any())
            plan.setLimits(limits);
        RetryPolicy retry;
        retry.maxAttempts = o.retries;
        plan.setRetry(retry);
        if (!o.resumePath.empty())
            plan.setCheckpoint(o.resumePath);
        Runner::Options ropts;
        ropts.jobs = o.jobs;
        ropts.progress = [](const EngineProgress &p) {
            std::cerr << "  [" << p.completed << "/" << p.total << "] "
                      << p.job.label << "\n";
        };
        Runner runner(ropts);

        std::optional<service::ResultCache> cache;
        if (!o.cachePath.empty()) {
            cache.emplace(o.cachePath);
            runner.setCache(&*cache);
        }

        // The CLI JSON writer rides the engine's delivery path: the
        // document streams record by record, byte-identical to the
        // batch serializer.
        std::ofstream json_file;
        std::optional<result_io::JsonDocumentSink> json_sink;
        if (!o.jsonPath.empty()) {
            std::ostream *json_out = &std::cout;
            if (o.jsonPath != "-") {
                json_file = openOut(o.jsonPath);
                json_out = &json_file;
            }
            result_io::WriteOptions wopts;
            // Single-stream scenarios are the legacy run exactly, so
            // they keep the v3 tag (and its byte-identity) too.
            wopts.streamsSchema = scenario && scenario->multiTenant();
            json_sink.emplace(*json_out, wopts);
            runner.addSink(*json_sink);
        }

        EngineTelemetry engine_tm;
        records = runner.run(plan, &engine_tm);
        if (engine_tm.workers > 1 || cache) {
            std::cerr << "engine: " << engine_tm.workers << " worker(s), "
                      << report::num(engine_tm.wallMs, 0) << " ms wall, "
                      << report::percent(engine_tm.utilization())
                      << " utilization";
            if (cache) {
                std::cerr << ", cache " << engine_tm.cacheHits
                          << " hit(s) / " << engine_tm.cacheMisses
                          << " miss(es)";
            }
            std::cerr << "\n";
        }
        if (json_sink && o.jsonPath != "-") {
            std::cerr << "wrote " << records.size() << " result(s) to "
                      << o.jsonPath << "\n";
        }
        wrote_json = true;
    }

    printRecords(records);
    if (!wrote_json && !o.jsonPath.empty()) {
        // Serial path: the engine never ran, so write the document
        // in one batch (same bytes as the streaming sink).
        if (o.jsonPath == "-") {
            result_io::write(std::cout, records);
        } else {
            auto out = openOut(o.jsonPath);
            result_io::write(out, records);
            std::cerr << "wrote " << records.size() << " result(s) to "
                      << o.jsonPath << "\n";
        }
    }

    if (!o.timelinePath.empty())
        writeTimelines(o.timelinePath, records);
    if (!o.traceEventsPath.empty())
        writeTraceEvents(o.traceEventsPath, records);

    // Exit 2: the sweep completed but at least one job did not.
    for (const auto &rec : records) {
        if (rec.result.status != RunStatus::Ok)
            return 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(parse(argc, argv));
    } catch (const std::exception &e) {
        std::cerr << "sacsim: " << e.what() << "\n";
        return 1;
    }
}
