/**
 * @file
 * sacsim — command-line driver for the SAC multi-chip GPU simulator.
 *
 * Runs one (workload, organization, configuration) experiment and
 * prints the result; the Swiss-army knife for exploring the design
 * space without writing C++.
 *
 *   sacsim --list
 *   sacsim --benchmark CFD --org sac
 *   sacsim --benchmark GEMM --org all --scale 4 --input-scale 0.125
 *   sacsim --benchmark RN --org sm --coherence hw --sectors 4 --stats
 *   sacsim --benchmark SN --org sac --record sn.trace
 *   sacsim --trace sn.trace --org mem --apw 256
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/log.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "workload/suite.hh"
#include "workload/trace_file.hh"
#include "workload/tracegen.hh"

namespace {

using namespace sac;

struct Options
{
    std::string benchmark = "CFD";
    std::string org = "all";
    int scale = 4;
    std::uint64_t seed = 1;
    double inputScale = 1.0;
    std::string coherence = "sw";
    unsigned sectors = 1;
    double interChipBw = 0.0; // 0 = config default
    bool stats = false;
    bool list = false;
    std::string recordPath;
    std::string tracePath;
    std::uint64_t apw = 0; // 0 = profile default
};

[[noreturn]] void
usage(int code)
{
    std::cout <<
        "usage: sacsim [options]\n"
        "  --list                 print the Table 4 benchmark suite\n"
        "  --benchmark NAME       workload to run (default CFD)\n"
        "  --org KIND             mem|sm|static|dynamic|sac|all "
        "(default all)\n"
        "  --scale N              topology divisor: 1=paper machine "
        "(default 4)\n"
        "  --seed N               experiment seed (default 1)\n"
        "  --input-scale F        multiply the data set (Fig. 13 axis)\n"
        "  --coherence sw|hw      LLC coherence (default sw)\n"
        "  --sectors N            sectors per line: 1|2|4 (default 1)\n"
        "  --interchip-bw GBPS    per-chip inter-chip bandwidth "
        "override\n"
        "  --apw N                accesses per warp per kernel "
        "override\n"
        "  --record FILE          record the generated trace to FILE\n"
        "  --trace FILE           replay FILE instead of a synthetic "
        "workload\n"
        "  --stats                dump the full per-chip stats tree\n";
    std::exit(code);
}

OrgKind
parseOrg(const std::string &name)
{
    if (name == "mem")
        return OrgKind::MemorySide;
    if (name == "sm")
        return OrgKind::SmSide;
    if (name == "static")
        return OrgKind::StaticLlc;
    if (name == "dynamic")
        return OrgKind::DynamicLlc;
    if (name == "sac")
        return OrgKind::Sac;
    fatal("unknown organization '", name, "'");
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(0);
        else if (arg == "--list")
            o.list = true;
        else if (arg == "--benchmark")
            o.benchmark = value();
        else if (arg == "--org")
            o.org = value();
        else if (arg == "--scale")
            o.scale = std::stoi(value());
        else if (arg == "--seed")
            o.seed = std::stoull(value());
        else if (arg == "--input-scale")
            o.inputScale = std::stod(value());
        else if (arg == "--coherence")
            o.coherence = value();
        else if (arg == "--sectors")
            o.sectors = static_cast<unsigned>(std::stoul(value()));
        else if (arg == "--interchip-bw")
            o.interChipBw = std::stod(value());
        else if (arg == "--apw")
            o.apw = std::stoull(value());
        else if (arg == "--record")
            o.recordPath = value();
        else if (arg == "--trace")
            o.tracePath = value();
        else if (arg == "--stats")
            o.stats = true;
        else
            fatal("unknown option '", arg, "' (try --help)");
    }
    return o;
}

void
listSuite()
{
    report::Table t({"name", "group", "CTAs", "footprint MB",
                     "true-shared MB", "false-shared MB", "kernels"});
    for (const auto &p : benchmarkSuite()) {
        t.addRow({p.name, p.smSidePreferred ? "SP" : "MP",
                  std::to_string(p.ctas), report::num(p.footprintMB, 0),
                  report::num(p.trueSharedMB, 0),
                  report::num(p.falseSharedMB, 0),
                  std::to_string(p.numKernels)});
    }
    t.print(std::cout);
}

RunResult
runOne(const Options &o, const GpuConfig &cfg,
       const WorkloadProfile &profile, OrgKind kind, bool dump_stats)
{
    std::unique_ptr<TraceSource> source;
    std::unique_ptr<std::ofstream> record;
    std::unique_ptr<SharingTraceGen> gen;

    if (!o.tracePath.empty()) {
        source = std::make_unique<TraceFileSource>(
            TraceFileSource::fromFile(o.tracePath));
    } else {
        gen = std::make_unique<SharingTraceGen>(
            profile.scaledData(Runner::dataScale(cfg)), cfg, o.seed);
        if (!o.recordPath.empty()) {
            record = std::make_unique<std::ofstream>(o.recordPath);
            if (!*record)
                fatal("cannot open '", o.recordPath, "' for writing");
            source = std::make_unique<TraceRecorder>(*gen, *record);
        }
    }
    TraceSource &trace = source ? *source : *gen;

    System system(cfg, kind, trace);
    const auto result =
        system.run(Runner::kernelsFor(profile.scaledData(
            Runner::dataScale(cfg))));
    if (dump_stats)
        system.dumpStats(std::cout);
    return result;
}

int
run(const Options &o)
{
    if (o.list) {
        listSuite();
        return 0;
    }

    GpuConfig cfg = GpuConfig::scaled(o.scale);
    cfg.seed = o.seed;
    cfg.coherence =
        o.coherence == "hw" ? CoherenceKind::Hardware
                            : CoherenceKind::Software;
    cfg.sectorsPerLine = o.sectors;
    if (o.interChipBw > 0.0)
        cfg.interChipBw = o.interChipBw;
    cfg.validate();

    WorkloadProfile profile = findBenchmark(o.benchmark);
    profile = profile.withInputScale(o.inputScale);
    if (o.apw > 0) {
        for (auto &phase : profile.phases)
            phase.accessesPerWarp = o.apw;
    }

    std::cout << "workload " << profile.name << " (x" << o.inputScale
              << ") on " << cfg.summary() << "\n\n";

    std::vector<OrgKind> kinds;
    if (o.org == "all") {
        kinds = {OrgKind::MemorySide, OrgKind::SmSide, OrgKind::StaticLlc,
                 OrgKind::DynamicLlc, OrgKind::Sac};
    } else {
        kinds = {parseOrg(o.org)};
    }

    std::optional<RunResult> baseline;
    report::Table t({"organization", "cycles", "speedup", "LLC miss",
                     "eff LLC BW", "remote frac", "avg load lat"});
    for (const auto kind : kinds) {
        const bool dump = o.stats && kinds.size() == 1;
        const auto r = runOne(o, cfg, profile, kind, dump);
        if (!baseline)
            baseline = r;
        t.addRow({toString(kind), std::to_string(r.cycles),
                  report::times(speedup(*baseline, r)),
                  report::percent(r.llcMissRate()),
                  report::num(r.effLlcBw),
                  report::percent(r.llcRemoteFraction),
                  report::num(r.avgLoadLatency, 0)});
        if (kind == OrgKind::Sac) {
            for (const auto &d : r.sacDecisions) {
                std::cout << "SAC kernel " << d.kernel << " -> "
                          << toString(d.chosen) << "\n";
            }
        }
    }
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(parse(argc, argv));
    } catch (const std::exception &e) {
        std::cerr << "sacsim: " << e.what() << "\n";
        return 1;
    }
}
